"""OnlineCostService: streaming estimates, priors, straggler thresholds."""

from __future__ import annotations

import pytest

from repro.chem.generate import receptor_size_class
from repro.perf.cost_model import PAPER_ACTIVITY_MEANS
from repro.perf.online_cost import OnlineCostService, sigma_from_moments
from repro.provenance.store import ProvenanceStore

# Hash-derived size classes (see repro.chem.generate.receptor_size_class).
LARGE_RECEPTOR = "1ABC"
SMALL_RECEPTOR = "2DEF"


def test_size_class_fixture_assumptions():
    assert receptor_size_class(LARGE_RECEPTOR) == "large"
    assert receptor_size_class(SMALL_RECEPTOR) == "small"


class TestSigmaFromMoments:
    def test_zero_std_gives_zero_sigma(self):
        assert sigma_from_moments(10.0, 0.0) == 0.0

    def test_scale_invariance(self):
        # Same coefficient of variation -> same shape parameter.
        assert sigma_from_moments(10.0, 5.0) == pytest.approx(
            sigma_from_moments(100.0, 50.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            sigma_from_moments(0.0, 1.0)
        with pytest.raises(ValueError):
            sigma_from_moments(1.0, -1.0)


class TestConstruction:
    def test_rejects_unknown_prior(self):
        with pytest.raises(ValueError):
            OnlineCostService(prior="vibes")

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            OnlineCostService(speculation_quantile=0.0)
        with pytest.raises(ValueError):
            OnlineCostService(speculation_quantile=1.5)

    def test_rejects_degenerate_window(self):
        with pytest.raises(ValueError):
            OnlineCostService(window=1)
        with pytest.raises(ValueError):
            OnlineCostService(min_samples=0)

    def test_default_quantile_is_p95(self):
        assert OnlineCostService().speculation_quantile == 0.95


class TestExpectedSeconds:
    def test_paper_prior_answers_cold(self):
        svc = OnlineCostService()
        assert svc.expected_seconds("babel", {}) == PAPER_ACTIVITY_MEANS["babel"]

    def test_unknown_tag_is_none(self):
        svc = OnlineCostService()
        assert svc.expected_seconds("mystery_stage", {}) is None

    def test_provenance_prior_starts_empty(self):
        svc = OnlineCostService(prior="provenance")
        assert svc.expected_seconds("babel", {}) is None

    def test_live_samples_converge_past_the_prior(self):
        svc = OnlineCostService(window=16)
        for _ in range(200):
            svc.observe("babel", {}, 10.0)
        # Paper prior carries count=0, so live samples dominate outright.
        assert svc.expected_seconds("babel", {}) == pytest.approx(10.0)
        assert svc.samples == 200

    def test_docking_tag_normalized_by_engine(self):
        svc = OnlineCostService(prior="provenance")
        svc.observe("docking", {"engine": "vina"}, 5.0)
        svc.observe("docking", {"engine": "autodock4"}, 50.0)
        assert svc.expected_seconds("docking", {"engine": "vina"}) == 5.0
        assert svc.expected_seconds("docking", {"engine": "autodock4"}) == 50.0

    def test_size_classes_learn_separately(self):
        svc = OnlineCostService(prior="provenance")
        for _ in range(10):
            svc.observe("docking", {"receptor_id": LARGE_RECEPTOR}, 8.0)
            svc.observe("docking", {"receptor_id": SMALL_RECEPTOR}, 2.0)
        assert svc.expected_seconds(
            "docking", {"receptor_id": LARGE_RECEPTOR}
        ) == pytest.approx(8.0)
        assert svc.expected_seconds(
            "docking", {"receptor_id": SMALL_RECEPTOR}
        ) == pytest.approx(2.0)

    def test_cold_size_class_falls_back_to_tag_aggregate(self):
        svc = OnlineCostService(prior="provenance")
        for _ in range(10):
            svc.observe("docking", {"receptor_id": LARGE_RECEPTOR}, 8.0)
        est = svc.expected_seconds("docking", {"receptor_id": SMALL_RECEPTOR})
        assert est == pytest.approx(8.0)


class TestStragglerThreshold:
    def test_disabled_at_quantile_one(self):
        svc = OnlineCostService(speculation_quantile=1.0)
        for _ in range(50):
            svc.observe("babel", {}, 1.0)
        assert not svc.speculation_enabled
        assert svc.straggler_threshold("babel", {}) is None

    def test_cold_distribution_never_triggers(self):
        svc = OnlineCostService(speculation_quantile=0.95, min_samples=8)
        for _ in range(7):
            svc.observe("babel", {}, 1.0)
        assert svc.straggler_threshold("babel", {}) is None

    def test_paper_prior_never_enables_speculation(self):
        # count=0 priors give placement estimates but no tail knowledge.
        svc = OnlineCostService(prior="paper", speculation_quantile=0.95)
        assert svc.straggler_threshold("babel", {}) is None

    def test_warm_window_returns_tail_quantile(self):
        svc = OnlineCostService(speculation_quantile=0.95, min_samples=8)
        for v in range(1, 101):
            svc.observe("babel", {}, float(v) / 100.0)
        thr = svc.straggler_threshold("babel", {})
        assert thr is not None
        assert 0.90 < thr <= 1.0  # p95 of ~U(0, 1]

    def test_seeded_history_enables_parametric_tail(self):
        store = ProvenanceStore()
        wkfid = store.begin_workflow("W")
        actid = store.register_activity(wkfid, "babel")
        for i in range(20):
            tid = store.begin_activation(actid, f"k{i}", float(i))
            store.end_activation(tid, float(i) + 2.0)  # 2 s each
        svc = OnlineCostService(
            prior="provenance", speculation_quantile=0.95, min_samples=8
        )
        assert svc.seed_from_store(store) == 1
        assert svc.expected_seconds("babel", {}) == pytest.approx(2.0)
        thr = svc.straggler_threshold("babel", {})
        # Zero measured variance collapses the tail onto the mean.
        assert thr == pytest.approx(2.0)

    def test_negative_observations_ignored(self):
        svc = OnlineCostService(prior="provenance")
        svc.observe("babel", {}, -1.0)
        assert svc.samples == 0
        assert svc.expected_seconds("babel", {}) is None
