"""Unit tests for the cost model, metrics and calibration."""

import pytest

from repro.perf.calibrate import calibrate_cost_model
from repro.perf.cost_model import PAPER_ACTIVITY_MEANS, ActivityCostModel
from repro.perf.metrics import efficiency, improvement_percent, speedup

TUP = {"receptor_id": "2HHN", "ligand_id": "0E6"}


class TestCostModel:
    def test_deterministic(self):
        m = ActivityCostModel()
        assert m.service_seconds("babel", TUP) == m.service_seconds("babel", TUP)

    def test_different_tuples_differ(self):
        m = ActivityCostModel()
        other = {"receptor_id": "1HUC", "ligand_id": "042"}
        assert m.service_seconds("docking", TUP) != m.service_seconds("docking", other)

    def test_positive(self):
        m = ActivityCostModel()
        for tag in PAPER_ACTIVITY_MEANS:
            if tag.startswith("docking_"):
                continue
            assert m.service_seconds(tag, TUP) > 0

    def test_docking_engine_split(self):
        m = ActivityCostModel()
        ad4 = m.service_seconds("docking", {**TUP, "engine": "autodock4"})
        vina = m.service_seconds("docking", {**TUP, "engine": "vina"})
        assert ad4 != vina

    def test_docking_dominates_on_average(self):
        """Activity 8 is the most compute-intensive (paper Fig. 6)."""
        m = ActivityCostModel()
        pairs = [
            {"receptor_id": f"R{i:03d}", "ligand_id": f"L{i:02d}", "engine": "autodock4"}
            for i in range(200)
        ]
        mean = lambda tag: sum(m.service_seconds(tag, t) for t in pairs) / len(pairs)
        dock = mean("docking")
        for tag in ("babel", "prepare_gpf", "autogrid", "docking_filter"):
            assert dock > mean(tag)

    def test_scale(self):
        base = ActivityCostModel()
        double = ActivityCostModel(scale=2.0)
        assert double.service_seconds("babel", TUP) == pytest.approx(
            2 * base.service_seconds("babel", TUP)
        )

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ActivityCostModel(scale=0)

    def test_unknown_activity_raises(self):
        with pytest.raises(KeyError, match="no cost entry"):
            ActivityCostModel().service_seconds("nope", TUP)

    def test_cost_fn_binding(self):
        m = ActivityCostModel()
        fn = m.cost_fn("babel")
        assert fn(TUP) == m.service_seconds("babel", TUP)

    def test_expected_total_engine_difference(self):
        m = ActivityCostModel()
        assert m.expected_total_per_pair("autodock4") > m.expected_total_per_pair("vina")

    def test_size_factor_influences_cost(self):
        m = ActivityCostModel()
        # Averaged over many ligands, large receptors cost more.
        from repro.chem.generate import receptor_size_class

        recs = [f"Q{i:03d}" for i in range(100)]
        larges = [r for r in recs if receptor_size_class(r) == "large"]
        smalls = [r for r in recs if receptor_size_class(r) == "small"]
        avg = lambda rs: sum(
            m.service_seconds("autogrid", {"receptor_id": r, "ligand_id": "042"})
            for r in rs
        ) / len(rs)
        assert avg(larges) > avg(smalls)


class TestMetrics:
    def test_speedup(self):
        assert speedup(100.0, 25.0) == 4.0

    def test_speedup_with_2core_baseline(self):
        assert speedup(100.0, 25.0, baseline_cores=2) == 8.0

    def test_speedup_validation(self):
        with pytest.raises(ValueError):
            speedup(0, 1)
        with pytest.raises(ValueError):
            speedup(1, 0)
        with pytest.raises(ValueError):
            speedup(1, 1, baseline_cores=0)

    def test_efficiency(self):
        assert efficiency(100.0, 25.0, 4) == 1.0
        assert efficiency(100.0, 50.0, 4) == 0.5

    def test_efficiency_validation(self):
        with pytest.raises(ValueError):
            efficiency(1, 1, 0)

    def test_improvement(self):
        assert improvement_percent(100.0, 4.6) == pytest.approx(95.4)
        with pytest.raises(ValueError):
            improvement_percent(0, 1)


class TestCalibration:
    def test_measured_means_adopted(self):
        model = calibrate_cost_model({"babel": 0.5, "autogrid": 3.0})
        assert model.means["babel"] == 0.5
        assert model.means["autogrid"] == 3.0

    def test_docking_split_preserves_ratio(self):
        model = calibrate_cost_model({"docking": 10.0})
        ratio = (
            PAPER_ACTIVITY_MEANS["docking_ad4"] / PAPER_ACTIVITY_MEANS["docking_vina"]
        )
        assert model.means["docking_ad4"] / model.means["docking_vina"] == pytest.approx(ratio)
        # Mean of the two engine means equals the measured docking mean.
        assert (model.means["docking_ad4"] + model.means["docking_vina"]) / 2 == pytest.approx(10.0)

    def test_target_total_rescaling(self):
        model = calibrate_cost_model({"babel": 1.0}, target_total_per_pair=216.0)
        assert model.expected_total_per_pair("autodock4") == pytest.approx(216.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_cost_model({})
        with pytest.raises(ValueError):
            calibrate_cost_model({"babel": 1.0}, target_total_per_pair=-5)

    def test_nonpositive_measurements_ignored(self):
        model = calibrate_cost_model({"babel": 0.0})
        assert model.means["babel"] == PAPER_ACTIVITY_MEANS["babel"]

    def test_unknown_tag_adopted_with_default_sigma(self):
        from repro.perf.calibrate import DEFAULT_SIGMA

        model = calibrate_cost_model({"md_refine": 12.0})
        assert model.means["md_refine"] == 12.0
        assert model.sigmas["md_refine"] == DEFAULT_SIGMA
        assert model.service_seconds("md_refine", TUP) > 0

    def test_measured_stddevs_set_sigmas(self):
        from repro.perf.online_cost import sigma_from_moments

        model = calibrate_cost_model(
            {"babel": 2.0}, measured_stddevs={"babel": 1.0}
        )
        assert model.sigmas["babel"] == pytest.approx(
            sigma_from_moments(2.0, 1.0)
        )

    def test_docking_stddev_applies_to_both_engines(self):
        from repro.perf.online_cost import sigma_from_moments

        model = calibrate_cost_model(
            {"docking": 10.0}, measured_stddevs={"docking": 5.0}
        )
        expected = sigma_from_moments(10.0, 5.0)
        assert model.sigmas["docking_vina"] == pytest.approx(expected)
        assert model.sigmas["docking_ad4"] == pytest.approx(expected)

    def test_calibrate_from_statistics(self):
        from repro.perf.calibrate import calibrate_from_statistics
        from repro.provenance.queries import ActivityStats

        stats = {
            "babel": ActivityStats(
                tag="babel", min=1.0, max=5.0, sum=30.0, avg=3.0, count=10,
                stddev=1.5,
            )
        }
        model = calibrate_from_statistics(stats)
        assert model.means["babel"] == 3.0
        assert model.sigmas["babel"] > 0


class TestDataVolume:
    def test_output_bytes_positive(self):
        m = ActivityCostModel()
        assert m.output_bytes("babel", TUP) > 0
        assert m.output_bytes("autogrid", TUP) > m.output_bytes("babel", TUP)

    def test_docking_engine_split(self):
        m = ActivityCostModel()
        ad4 = m.output_bytes("docking", {**TUP, "engine": "autodock4"})
        vina = m.output_bytes("docking", {**TUP, "engine": "vina"})
        assert ad4 > vina  # DLGs carry every conformation

    def test_full_execution_volume_near_600gb(self):
        """Paper: '600 gigabytes of data for each workflow execution'."""
        from repro.perf.cost_model import PAPER_ACTIVITY_BYTES

        per_pair = sum(
            v for k, v in PAPER_ACTIVITY_BYTES.items() if k != "docking_vina"
        )
        total_gb = per_pair * 9996 / 1e9
        assert 400 < total_gb < 800

    def test_simulated_run_accumulates_bytes(self):
        from repro.perf.experiments import run_single_scale

        res = run_single_scale(8, scenario="ad4", n_pairs=50, failure_rate=0.0)
        assert res.report.bytes_written > 1e9  # ~60 MB/pair x 50
