"""Unit tests for the refinement substrate: intra FF, minimization, MD."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.atom import Atom
from repro.chem.generate import generate_ligand, generate_receptor
from repro.chem.molecule import Molecule
from repro.docking.box import GridBox
from repro.docking.prepare import prepare_ligand, prepare_receptor
from repro.docking.scoring_vina import VinaScorer
from repro.dynamics.forcefield_intra import IntraFF
from repro.dynamics.md import KB, MDConfig, run_md
from repro.dynamics.minimize import minimize_pose
from repro.dynamics.refine import redock, refine_pose


@pytest.fixture(scope="module")
def ligand():
    lig = generate_ligand("0E6")
    prep = prepare_ligand(lig)
    return prep.molecule


@pytest.fixture(scope="module")
def scorer(ligand):
    rec = generate_receptor("2HHN")
    rp = prepare_receptor(rec)
    box = GridBox.around_pocket(
        np.array(rec.metadata["pocket_center"]),
        rec.metadata["pocket_radius"],
        spacing=0.8,
    )
    return VinaScorer(rp.molecule, ligand, box)


class TestIntraFF:
    def test_requires_bonds(self):
        m = Molecule("M")
        m.add_atom(Atom(1, "C1", "C", [0, 0, 0]))
        m.add_atom(Atom(2, "C2", "C", [9, 0, 0]))
        with pytest.raises(ValueError, match="bonds"):
            IntraFF.from_molecule(m)

    def test_requires_two_atoms(self):
        m = Molecule("M")
        m.add_atom(Atom(1, "C1", "C", [0, 0, 0]))
        with pytest.raises(ValueError):
            IntraFF.from_molecule(m)

    def test_reference_bond_energy_zero(self, ligand):
        ff = IntraFF.from_molecule(ligand)
        coords = ligand.coords
        bi, bj = ff.bonds[:, 0], ff.bonds[:, 1]
        r = np.linalg.norm(coords[bi] - coords[bj], axis=1)
        assert np.allclose(r, ff.bond_r0)

    def test_stretching_costs_energy(self, ligand):
        ff = IntraFF.from_molecule(ligand)
        stretched = ligand.coords * 1.1
        assert ff.energy(stretched) > ff.energy(ligand.coords)

    def test_analytic_gradient_matches_fd(self, ligand):
        ff = IntraFF.from_molecule(ligand)
        rng = np.random.default_rng(1)
        x = ligand.coords + rng.normal(scale=0.05, size=ligand.coords.shape)
        _, grad = ff.energy_gradient(x)
        h = 1e-5
        for i, axis in [(0, 0), (3, 1), (7, 2)]:
            xp, xm = x.copy(), x.copy()
            xp[i, axis] += h
            xm[i, axis] -= h
            fd = (ff.energy(xp) - ff.energy(xm)) / (2 * h)
            assert grad[i, axis] == pytest.approx(fd, rel=1e-4, abs=1e-5)

    def test_gradient_shape(self, ligand):
        ff = IntraFF.from_molecule(ligand)
        e, g = ff.energy_gradient(ligand.coords)
        assert g.shape == ligand.coords.shape
        assert np.isfinite(e)


class TestMinimize:
    def test_lowers_energy_from_perturbed_state(self, ligand, scorer):
        rng = np.random.default_rng(2)
        start = ligand.coords + rng.normal(scale=0.15, size=ligand.coords.shape)
        start = start - start.mean(axis=0) + scorer.box.center
        res = minimize_pose(ligand, start, scorer, max_iterations=25)
        assert res.final_energy <= res.initial_energy
        assert res.energy_drop >= 0
        assert res.coords.shape == start.shape

    def test_shape_validation(self, ligand, scorer):
        with pytest.raises(ValueError, match="shape"):
            minimize_pose(ligand, np.zeros((2, 3)), scorer)

    def test_preserves_bond_lengths_roughly(self, ligand, scorer):
        start = ligand.coords - ligand.coords.mean(axis=0) + scorer.box.center
        res = minimize_pose(ligand, start, scorer, max_iterations=25)
        ff = IntraFF.from_molecule(ligand)
        bi, bj = ff.bonds[:, 0], ff.bonds[:, 1]
        r = np.linalg.norm(res.coords[bi] - res.coords[bj], axis=1)
        assert np.all(np.abs(r - ff.bond_r0) < 0.3)


class TestMD:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MDConfig(steps=0)
        with pytest.raises(ValueError):
            MDConfig(dt=-0.1)
        with pytest.raises(ValueError):
            MDConfig(temperature=-1)

    def test_vacuum_md_runs_and_samples(self, ligand):
        res = run_md(
            ligand, ligand.coords, scorer=None,
            config=MDConfig(steps=50, sample_every=10),
            rng=np.random.default_rng(3),
        )
        assert len(res.potential_energies) >= 5
        assert np.isfinite(res.coords).all()

    def test_temperature_near_target(self, ligand):
        cfg = MDConfig(steps=400, temperature=300.0, sample_every=40)
        res = run_md(ligand, ligand.coords, None, cfg, np.random.default_rng(4))
        # Loose band: small system, short trajectory.
        tail = np.mean(res.temperatures[-5:])
        assert 80.0 < tail < 900.0

    def test_bonds_survive_dynamics(self, ligand):
        res = run_md(
            ligand, ligand.coords, None,
            MDConfig(steps=150, sample_every=50),
            np.random.default_rng(5),
        )
        ff = IntraFF.from_molecule(ligand)
        bi, bj = ff.bonds[:, 0], ff.bonds[:, 1]
        r = np.linalg.norm(res.coords[bi] - res.coords[bj], axis=1)
        assert np.all(np.abs(r - ff.bond_r0) < 0.5)

    def test_deterministic_given_rng(self, ligand):
        cfg = MDConfig(steps=30)
        a = run_md(ligand, ligand.coords, None, cfg, np.random.default_rng(6))
        b = run_md(ligand, ligand.coords, None, cfg, np.random.default_rng(6))
        assert np.allclose(a.coords, b.coords)

    def test_shape_validation(self, ligand):
        with pytest.raises(ValueError):
            run_md(ligand, np.zeros((2, 3)))

    @given(st.integers(200, 400))
    @settings(max_examples=3, deadline=None)
    def test_property_kb_temperature_positive(self, t):
        assert KB * t > 0


class TestRefine:
    def test_redock_produces_negative_feb(self):
        result, scorer, lp = redock("2HHN", "0E6", seeds=(0,))
        assert result.best_energy < 0
        assert scorer.total(result.best_pose.coords) == pytest.approx(
            result.best_energy, abs=0.5
        )

    def test_alternative_conformation_differs(self):
        a, _, _ = redock("1PIP", "042", seeds=(0,))
        b, _, _ = redock("1PIP", "042", seeds=(0,), alternative_conformation=True)
        assert a.best_energy != b.best_energy

    def test_refine_pose_full_protocol(self):
        res = refine_pose("2HHN", "0E6", screening_feb=-5.5, md_steps=20, seeds=(0,))
        assert res.redock_feb < 0
        assert np.isfinite(res.refined_feb)
        assert res.pose_shift_rmsd >= 0
        assert "2HHN-0E6" in res.summary()
        assert ("REINFORCED" in res.summary()) or ("ARTIFACT" in res.summary())
