"""Unit tests for the ligand library (ZINC stand-in)."""

import numpy as np
import pytest

from repro.qsar.library import LigandLibrary, enumerate_library


@pytest.fixture(scope="module")
def library():
    return LigandLibrary.build(enumerate_library(30))


class TestEnumerate:
    def test_ids_deterministic_and_unique(self):
        a = enumerate_library(10)
        b = enumerate_library(10)
        assert a == b
        assert len(set(a)) == 10
        assert a[0] == "ZINC00000001"

    def test_prefix(self):
        assert enumerate_library(1, prefix="LIB")[0] == "LIB00000001"

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            enumerate_library(0)


class TestBuild:
    def test_build_features_everything(self, library):
        assert len(library) == 30
        assert all(e.descriptors.shape == library.entries[0].descriptors.shape
                   for e in library.entries)

    def test_duplicates_removed(self):
        lib = LigandLibrary.build(["042", "042", "074"])
        assert len(lib) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LigandLibrary.build([])

    def test_druglike_subset(self, library):
        sub = library.druglike_subset()
        assert 0 < len(sub) <= len(library)
        assert all(e.druglike for e in sub.entries)


class TestDiversity:
    def test_select_diverse_size_and_uniqueness(self, library):
        picks = library.select_diverse(8)
        assert len(picks) == 8
        assert len(set(picks)) == 8
        assert set(picks) <= set(library.ids())

    def test_bounds(self, library):
        with pytest.raises(ValueError):
            library.select_diverse(0)
        with pytest.raises(ValueError):
            library.select_diverse(len(library) + 1)
        with pytest.raises(ValueError):
            library.select_diverse(3, seed_index=99)

    def test_diverse_beats_random_prefix_on_coverage(self, library):
        """Max-min selection covers compound space better than the first-k."""
        k = 6
        diverse = library.select_diverse(k)
        prefix = library.ids()[:k]
        assert library.coverage_radius(diverse) <= library.coverage_radius(prefix)

    def test_full_selection_has_zero_radius(self, library):
        assert library.coverage_radius(library.ids()) == pytest.approx(0.0)

    def test_deterministic(self, library):
        assert library.select_diverse(5) == library.select_diverse(5)


class TestNeighbors:
    def test_nearest_neighbors_sorted(self, library):
        target = library.ids()[0]
        nn = library.nearest_neighbors(target, k=5)
        assert len(nn) == 5
        assert target not in [i for i, _ in nn]
        dists = [d for _, d in nn]
        assert dists == sorted(dists)

    def test_unknown_ligand_raises(self, library):
        with pytest.raises(KeyError):
            library.nearest_neighbors("NOPE")

    def test_coverage_requires_selection(self, library):
        with pytest.raises(ValueError):
            library.coverage_radius([])
