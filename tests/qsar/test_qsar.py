"""Unit + property tests for descriptors, Lipinski, QSAR models, screening."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.atom import Atom
from repro.chem.generate import generate_ligand
from repro.chem.molecule import Molecule
from repro.qsar.descriptors import (
    DESCRIPTOR_NAMES,
    compute_descriptors,
)
from repro.qsar.lipinski import lipinski_report, passes_rule_of_five
from repro.qsar.model import QSARError, QSARModel, cross_validate
from repro.qsar.screen import describe_model, qsar_screen


def make_benzene() -> Molecule:
    m = Molecule("BNZ")
    for k in range(6):
        theta = 2 * np.pi * k / 6
        m.add_atom(
            Atom(k + 1, f"C{k+1}", "C",
                 [1.39 * np.cos(theta), 1.39 * np.sin(theta), 0.0],
                 aromatic=True)
        )
    for k in range(6):
        m.add_bond(k, (k + 1) % 6, aromatic=True)
    return m


class TestDescriptors:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            compute_descriptors(Molecule())

    def test_benzene(self):
        d = compute_descriptors(make_benzene())
        assert d.n_heavy_atoms == 6
        assert d.n_aromatic_atoms == 6
        assert d.n_rings == 1
        assert d.n_rotatable_bonds == 0
        assert d.h_bond_donors == 0
        assert d.tpsa == 0.0
        assert d.clogp == pytest.approx(6 * 0.29)

    def test_vector_order_matches_names(self):
        d = compute_descriptors(make_benzene())
        v = d.vector()
        assert len(v) == len(DESCRIPTOR_NAMES)
        assert v[DESCRIPTOR_NAMES.index("n_heavy_atoms")] == 6

    def test_donor_acceptor_counting(self):
        m = Molecule("M")
        m.add_atom(Atom(1, "C1", "C", [0, 0, 0]))
        m.add_atom(Atom(2, "O1", "O", [1.4, 0, 0]))
        m.add_atom(Atom(3, "H1", "H", [2.0, 0.8, 0]))
        m.add_atom(Atom(4, "N1", "N", [-1.4, 0, 0]))
        m.add_bond(0, 1)
        m.add_bond(1, 2)
        m.add_bond(0, 3)
        d = compute_descriptors(m)
        assert d.h_bond_acceptors == 2  # O and N
        assert d.h_bond_donors == 1  # only O carries an H

    def test_shape_descriptors(self):
        # A linear chain is strongly aspherical; benzene is planar-disk.
        chain = Molecule("CHN")
        for i in range(6):
            chain.add_atom(Atom(i + 1, f"C{i+1}", "C", [1.5 * i, 0, 0]))
        for i in range(5):
            chain.add_bond(i, i + 1)
        d_chain = compute_descriptors(chain)
        d_ring = compute_descriptors(make_benzene())
        assert d_chain.asphericity > d_ring.asphericity
        assert d_chain.radius_of_gyration > 0

    def test_ring_count_fused(self):
        m = make_benzene()
        # Add a bridge to create a second ring.
        m.add_atom(Atom(7, "C7", "C", [2.8, 1.0, 0.0]))
        m.add_bond(0, 6)
        m.add_bond(2, 6)
        assert compute_descriptors(m).n_rings == 2

    @given(st.sampled_from(["042", "074", "0D6", "0E6", "ACE", "93N", "X40"]))
    @settings(max_examples=7, deadline=None)
    def test_property_generated_ligands_have_sane_descriptors(self, lig_id):
        d = compute_descriptors(generate_ligand(lig_id))
        assert d.molecular_weight > 50
        assert 0 <= d.n_rotatable_bonds <= 20
        assert d.h_bond_acceptors >= 0
        assert np.isfinite(d.vector()).all()


class TestLipinski:
    def test_small_molecule_passes(self):
        assert passes_rule_of_five(make_benzene())

    def test_violation_counting(self):
        d = compute_descriptors(make_benzene())
        d.molecular_weight = 900.0  # 1 violation: still passes
        assert lipinski_report(d).passes
        d.clogp = 9.0  # 2 violations: fails
        report = lipinski_report(d)
        assert report.violations == 2
        assert not report.passes

    def test_report_fields(self):
        report = lipinski_report(make_benzene())
        assert report.molecular_weight_ok
        assert report.donors_ok and report.acceptors_ok


class TestQSARModel:
    def _linear_data(self, n=40, d=5, noise=0.01, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        w = np.arange(1, d + 1, dtype=float)
        y = X @ w + 3.0 + rng.normal(scale=noise, size=n)
        return X, y

    def test_recovers_linear_relation(self):
        X, y = self._linear_data()
        model = QSARModel(alpha=1e-6).fit(X, y)
        assert model.r_squared(X, y) > 0.999
        assert model.predict(X[:1])[0] == pytest.approx(y[0], abs=0.1)

    def test_validation_errors(self):
        with pytest.raises(QSARError):
            QSARModel(alpha=-1)
        with pytest.raises(QSARError):
            QSARModel().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(QSARError):
            QSARModel().fit(np.zeros((1, 2)), np.zeros(1))
        with pytest.raises(QSARError):
            QSARModel().predict(np.zeros((1, 2)))

    def test_constant_feature_handled(self):
        X, y = self._linear_data()
        X[:, 0] = 7.0  # zero variance
        model = QSARModel().fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_regularization_shrinks_coefficients(self):
        X, y = self._linear_data()
        weak = QSARModel(alpha=1e-6).fit(X, y)
        strong = QSARModel(alpha=1e3).fit(X, y)
        assert np.abs(strong.coefficients).sum() < np.abs(weak.coefficients).sum()

    def test_feature_importance(self):
        X, y = self._linear_data()
        model = QSARModel(alpha=1e-6).fit(X, y)
        imp = model.feature_importance()
        # Weights grow with index by construction.
        assert imp[-1] > imp[0]

    def test_r_squared_no_variance_raises(self):
        X, _ = self._linear_data()
        model = QSARModel().fit(X, np.linspace(0, 1, X.shape[0]))
        with pytest.raises(QSARError):
            model.r_squared(X, np.ones(X.shape[0]))

    def test_cross_validation_good_on_linear(self):
        X, y = self._linear_data(n=60)
        cv = cross_validate(X, y, alpha=1e-4, k=5)
        assert cv["q2"] > 0.99
        assert len(cv["fold_rmse"]) == 5

    def test_cross_validation_k_bounds(self):
        X, y = self._linear_data(n=10)
        with pytest.raises(QSARError):
            cross_validate(X, y, k=1)
        with pytest.raises(QSARError):
            cross_validate(X, y, k=11)


class TestScreening:
    def _training(self):
        # FEB loosely correlated with size: bigger ligands bind stronger
        # in this synthetic training set.
        ids = ["042", "074", "0D6", "0E6", "ACE", "ALD", "93N", "2CA"]
        out = {}
        for lig in ids:
            d = compute_descriptors(generate_ligand(lig))
            out[lig] = -0.3 * d.n_heavy_atoms + 0.5
        return out

    def test_ranking_covers_library(self):
        library = ["042", "074", "0D6", "0E6", "X38", "X39", "X40"]
        ranking = qsar_screen(self._training(), library)
        assert len(ranking.ranked_ligands) == len(library)
        febs = [f for _, f in ranking.ranked_ligands]
        assert febs == sorted(febs)

    def test_model_learns_size_relation(self):
        ranking = qsar_screen(self._training(), ["042", "X38"])
        # q2 should be strong: the relation is exactly linear in one
        # descriptor.
        assert ranking.q2 > 0.8

    def test_top_with_druglike_filter(self):
        ranking = qsar_screen(self._training(), ["042", "074", "X38", "X39"])
        top = ranking.top(2)
        assert len(top) == 2
        druglike_top = ranking.top(2, druglike_only=True)
        assert all(ranking.druglike[l] for l, _ in druglike_top)

    def test_too_few_training_raises(self):
        with pytest.raises(QSARError):
            qsar_screen({"042": -5.0}, ["074"])

    def test_describe_model(self):
        ranking = qsar_screen(self._training(), ["042"])
        text = describe_model(ranking.model)
        assert "n_heavy_atoms" in text
