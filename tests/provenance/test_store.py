"""Unit tests for the provenance store and the paper's queries."""

import pytest

from repro.provenance.prov_model import export_prov_document, to_prov_n
from repro.provenance.queries import (
    activation_durations,
    activity_history_statistics,
    query1_activity_statistics,
    query1_sql,
    query2_files,
    workflow_tet,
)
from repro.provenance.store import ActivationStatus, ProvenanceStore


@pytest.fixture()
def store():
    with ProvenanceStore() as s:
        yield s


@pytest.fixture()
def populated(store):
    """A tiny SciDock-shaped run: 2 activities x 2 activations each."""
    wkfid = store.begin_workflow(
        "SciDock", "Docking", "scidock", "/root/scidock/", starttime=0.0
    )
    babel = store.register_activity(wkfid, "babel")
    ad4 = store.register_activity(wkfid, "autodock4")
    t = 0.0
    for actid, durations in ((babel, [2.0, 3.0]), (ad4, [100.0, 140.0])):
        for k, dur in enumerate(durations):
            tid = store.begin_activation(
                actid, f"pair-{k}", starttime=t, vm_id="i-1", core_index=0
            )
            store.end_activation(tid, endtime=t + dur)
            if actid == ad4:
                store.record_file(
                    tid, f"LIG_{k}.dlg", 65740, f"/root/exp_SciDock/autodock4/{k}/"
                )
                store.record_extracts(tid, {"feb": -5.2 - k, "rmsd": 9.5})
            t += dur
    store.end_workflow(wkfid, endtime=t)
    return wkfid


class TestLifecycle:
    def test_begin_end_workflow(self, store):
        wkfid = store.begin_workflow("W", starttime=1.0)
        store.end_workflow(wkfid, endtime=11.0)
        assert workflow_tet(store, wkfid) == pytest.approx(10.0)

    def test_unfinished_workflow_tet_raises(self, store):
        wkfid = store.begin_workflow("W")
        with pytest.raises(ValueError):
            workflow_tet(store, wkfid)

    def test_unknown_workflow_raises(self, store):
        with pytest.raises(KeyError):
            store.workflow_row(99)

    def test_activation_statuses(self, store):
        wkfid = store.begin_workflow("W")
        act = store.register_activity(wkfid, "a")
        ok = store.begin_activation(act, "t1", 0.0)
        store.end_activation(ok, 1.0)
        bad = store.begin_activation(act, "t2", 0.0)
        store.end_activation(bad, 2.0, ActivationStatus.FAILED, 1, "boom")
        counts = store.counts_by_status(wkfid)
        assert counts == {"FINISHED": 1, "FAILED": 1}

    def test_failed_activations_query(self, store):
        wkfid = store.begin_workflow("W")
        act = store.register_activity(wkfid, "a")
        tid = store.begin_activation(act, "t1", 0.0)
        store.end_activation(tid, 1.0, ActivationStatus.FAILED, 1, "err")
        failed = store.failed_activations(wkfid)
        assert len(failed) == 1
        assert failed[0]["errormsg"] == "err"

    def test_blocked_records(self, store):
        wkfid = store.begin_workflow("W")
        act = store.register_activity(wkfid, "prep")
        store.record_blocked(act, "1CS8-042", 5.0, "Hg present in receptor")
        counts = store.counts_by_status(wkfid)
        assert counts == {"BLOCKED": 1}

    def test_attempt_tracking(self, store):
        wkfid = store.begin_workflow("W")
        act = store.register_activity(wkfid, "a")
        t1 = store.begin_activation(act, "k", 0.0, attempt=0)
        store.end_activation(t1, 1.0, ActivationStatus.FAILED)
        t2 = store.begin_activation(act, "k", 1.0, attempt=1)
        store.end_activation(t2, 2.0)
        rows = store.activations(wkfid)
        assert [r["attempt"] for r in rows] == [0, 1]


class TestQuery1:
    def test_statistics_per_activity(self, store, populated):
        stats = {s.tag: s for s in query1_activity_statistics(store, populated)}
        assert stats["babel"].min == pytest.approx(2.0)
        assert stats["babel"].max == pytest.approx(3.0)
        assert stats["babel"].sum == pytest.approx(5.0)
        assert stats["babel"].avg == pytest.approx(2.5)
        assert stats["autodock4"].avg == pytest.approx(120.0)

    def test_raw_sql_matches_helper(self, store, populated):
        rows = store.sql(query1_sql(), (populated,))
        helper = query1_activity_statistics(store, populated)
        assert len(rows) == len(helper)
        by_tag = {r["tag"]: r for r in rows}
        for s in helper:
            assert by_tag[s.tag]["avg"] == pytest.approx(s.avg)

    def test_stddev_population_moments(self, store, populated):
        stats = {s.tag: s for s in query1_activity_statistics(store, populated)}
        # babel [2, 3]: population stddev 0.5; autodock4 [100, 140]: 20.
        assert stats["babel"].stddev == pytest.approx(0.5)
        assert stats["autodock4"].stddev == pytest.approx(20.0)

    def test_history_aggregates_across_runs(self, store, populated):
        # A second run of babel shifts the all-runs aggregate while the
        # per-run Query-1 view of the first run stays put.
        wkfid2 = store.begin_workflow("SciDock", starttime=1000.0)
        babel2 = store.register_activity(wkfid2, "babel")
        tid = store.begin_activation(babel2, "pair-x", starttime=1000.0)
        store.end_activation(tid, endtime=1007.0)
        store.end_workflow(wkfid2, endtime=1007.0)

        history = {s.tag: s for s in activity_history_statistics(store)}
        assert history["babel"].count == 3
        assert history["babel"].avg == pytest.approx((2.0 + 3.0 + 7.0) / 3)
        per_run = {s.tag: s for s in query1_activity_statistics(store, populated)}
        assert per_run["babel"].count == 2
        assert per_run["babel"].avg == pytest.approx(2.5)

    def test_only_finished_counted(self, store):
        wkfid = store.begin_workflow("W")
        act = store.register_activity(wkfid, "a")
        t1 = store.begin_activation(act, "x", 0.0)
        store.end_activation(t1, 5.0)
        t2 = store.begin_activation(act, "y", 0.0)
        store.end_activation(t2, 500.0, ActivationStatus.FAILED)
        stats = query1_activity_statistics(store, wkfid)
        assert stats[0].count == 1


class TestQuery2:
    def test_finds_dlg_files(self, store, populated):
        files = query2_files(store, populated, ".dlg")
        assert len(files) == 2
        assert files[0].workflow_tag == "SciDock"
        assert files[0].activity_tag == "autodock4"
        assert files[0].fname.endswith(".dlg")
        assert files[0].fsize == 65740
        assert "/root/exp_SciDock/autodock4/" in files[0].fdir

    def test_extension_filter(self, store, populated):
        assert query2_files(store, populated, ".pdbqt") == []


class TestExtracts:
    def test_extract_roundtrip(self, store, populated):
        rows = store.extracts(populated, "feb")
        values = sorted(float(r["value"]) for r in rows)
        assert values == [-6.2, -5.2]

    def test_single_extract(self, store):
        wkfid = store.begin_workflow("W")
        act = store.register_activity(wkfid, "a")
        tid = store.begin_activation(act, "k", 0.0)
        store.end_activation(tid, 1.0)
        store.record_extract(tid, "energy", -7.25)
        rows = store.extracts(wkfid, "energy")
        assert float(rows[0]["value"]) == -7.25


class TestDurations:
    def test_histogram_data(self, store, populated):
        durations = activation_durations(store, populated)
        assert sorted(durations) == [2.0, 3.0, 100.0, 140.0]


class TestProvExport:
    def test_document_structure(self, store, populated):
        doc = export_prov_document(store, populated)
        assert doc["workflow"]["tag"] == "SciDock"
        assert len(doc["activity"]) == 4
        assert len(doc["entity"]) == 2
        assert "vm:i-1" in doc["agent"]
        assert len(doc["wasGeneratedBy"]) == 2
        assert len(doc["wasAssociatedWith"]) == 4

    def test_prov_n_rendering(self, store, populated):
        text = to_prov_n(export_prov_document(store, populated))
        assert text.startswith("document")
        assert text.rstrip().endswith("endDocument")
        assert "wasGeneratedBy(file:" in text
        assert "agent(vm:i-1" in text

    def test_file_backed_store(self, tmp_path):
        path = tmp_path / "prov.db"
        with ProvenanceStore(path) as s:
            wkfid = s.begin_workflow("W", starttime=0.0)
            s.end_workflow(wkfid, 5.0)
        with ProvenanceStore(path) as s2:
            assert s2.workflow_row(wkfid)["tag"] == "W"


class TestWriteBatching:
    def test_buffered_records_visible_through_sql(self):
        s = ProvenanceStore(buffer_size=1000)
        wkfid = s.begin_workflow("W", starttime=0.0)
        actid = s.register_activity(wkfid, "dock")
        tids = [s.begin_activation(actid, f"k{i}", float(i)) for i in range(10)]
        for t in tids:
            s.end_activation(t, 99.0)
        s.record_file(tids[0], "out.dlg", 128, "/tmp")
        s.record_extracts(tids[0], {"feb": -7.5, "rmsd": 0.9})
        # Nothing has been committed yet...
        assert s._pending_count > 0
        # ...but steering queries flush first and see everything.
        assert s.counts_by_status(wkfid) == {"FINISHED": 10}
        assert s._pending_count == 0
        assert len(s.extracts(wkfid, "feb")) == 1
        s.close()

    def test_end_after_flush_queues_update(self):
        s = ProvenanceStore(buffer_size=1000)
        wkfid = s.begin_workflow("W", starttime=0.0)
        actid = s.register_activity(wkfid, "dock")
        tid = s.begin_activation(actid, "k", 1.0)
        s.flush()
        s.end_activation(tid, 2.0, ActivationStatus.FAILED, 1, "boom")
        rows = s.activations(wkfid, ActivationStatus.FAILED)
        assert len(rows) == 1
        assert rows[0]["errormsg"] == "boom"
        s.close()

    def test_flush_threshold_triggers_commit(self):
        s = ProvenanceStore(buffer_size=3)
        wkfid = s.begin_workflow("W", starttime=0.0)
        actid = s.register_activity(wkfid, "dock")
        for i in range(3):
            s.begin_activation(actid, f"k{i}", float(i))
        # Third write crossed the threshold and drained the buffer.
        assert s._pending_count == 0
        s.close()

    def test_close_flushes(self, tmp_path):
        path = tmp_path / "prov.db"
        with ProvenanceStore(path, buffer_size=1000) as s:
            wkfid = s.begin_workflow("W", starttime=0.0)
            actid = s.register_activity(wkfid, "dock")
            tid = s.begin_activation(actid, "k", 1.0)
            s.end_activation(tid, 2.0)
        with ProvenanceStore(path) as s2:
            assert s2.counts_by_status(wkfid) == {"FINISHED": 1}

    def test_taskids_resume_across_reopen(self, tmp_path):
        path = tmp_path / "prov.db"
        with ProvenanceStore(path, buffer_size=8) as s:
            wkfid = s.begin_workflow("W", starttime=0.0)
            actid = s.register_activity(wkfid, "dock")
            first = [s.begin_activation(actid, f"k{i}", 0.0) for i in range(4)]
        with ProvenanceStore(path, buffer_size=8) as s2:
            nxt = s2.begin_activation(actid, "k-new", 0.0)
        assert nxt == max(first) + 1

    def test_file_backed_uses_wal(self, tmp_path):
        with ProvenanceStore(tmp_path / "prov.db") as s:
            assert s.sql("PRAGMA journal_mode")[0][0] == "wal"

    def test_invalid_buffer_params(self):
        with pytest.raises(ValueError):
            ProvenanceStore(buffer_size=0)
        with pytest.raises(ValueError):
            ProvenanceStore(flush_interval=0.0)

    def test_terminal_status_flushes_synchronously(self):
        # A terminal end_activation must not wait for the batch
        # threshold: the row is durable the moment the call returns,
        # whatever buffer_size says (the journal's flush barrier and
        # crash resume both lean on this).
        from repro.provenance.store import _TERMINAL_STATUSES

        for status in (
            ActivationStatus.FINISHED,
            ActivationStatus.FAILED,
            ActivationStatus.ABORTED,
            ActivationStatus.BLOCKED,
        ):
            assert status.value in _TERMINAL_STATUSES
            s = ProvenanceStore(buffer_size=1000, flush_interval=3600.0)
            wkfid = s.begin_workflow("W", starttime=0.0)
            actid = s.register_activity(wkfid, "dock")
            tid = s.begin_activation(actid, "k", 0.0)
            assert s._pending_count > 0
            s.end_activation(tid, 1.0, status)
            assert s._pending_count == 0, status
            # Non-terminal traffic afterwards buffers as before.
            s.begin_activation(actid, "k2", 2.0)
            s.record_file(tid, "out.dlg", 128, "/tmp")
            assert s._pending_count > 0
            s.close()

    def test_record_blocked_is_durable_immediately(self):
        s = ProvenanceStore(buffer_size=1000, flush_interval=3600.0)
        wkfid = s.begin_workflow("W", starttime=0.0)
        actid = s.register_activity(wkfid, "prep")
        s.record_blocked(actid, "1CS8-042", 5.0, "Hg present in receptor")
        assert s._pending_count == 0
        s.close()

    def test_concurrent_writers_stress(self):
        """Many threads hammering one buffered store: no lost records.

        Exercises the documented locking contract: a single lock
        serializes buffer mutations and SQLite access, so concurrent
        begin/end/extract traffic (with reads mixed in, forcing flushes
        mid-stream) must never drop or duplicate a record.
        """
        import threading

        s = ProvenanceStore(buffer_size=17)
        wkfid = s.begin_workflow("W", starttime=0.0)
        actid = s.register_activity(wkfid, "dock")
        n_threads, per_thread = 8, 50
        errors = []

        def writer(worker: int) -> None:
            try:
                for i in range(per_thread):
                    tid = s.begin_activation(actid, f"w{worker}-{i}", float(i))
                    s.record_extract(tid, "worker", worker)
                    s.end_activation(tid, float(i) + 1.0)
                    if i % 10 == 0:  # steering read mid-stream
                        s.counts_by_status(wkfid)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        total = n_threads * per_thread
        assert s.counts_by_status(wkfid) == {"FINISHED": total}
        rows = s.sql("SELECT COUNT(DISTINCT taskid) AS n FROM hactivation")
        assert rows[0]["n"] == total
        assert len(s.sql("SELECT * FROM hextract")) == total
        s.close()


class TestCrashDurability:
    """SIGKILL a buffered writer mid-batch: no FINISHED row may vanish."""

    CHILD = """\
import os, sys
from repro.provenance.store import ProvenanceStore

s = ProvenanceStore(sys.argv[1], buffer_size=1000, flush_interval=3600.0)
wkfid = s.begin_workflow("W", starttime=0.0)
actid = s.register_activity(wkfid, "dock")
for i in range(20):
    tid = s.begin_activation(actid, f"k{i}", 0.0)
    s.end_activation(tid, 1.0)
# Buffered post-terminal noise that never flushes before the kill.
for i in range(5):
    s.begin_activation(actid, f"pending{i}", 0.0)
os.kill(os.getpid(), 9)
"""

    def test_finished_rows_survive_writer_sigkill(self, tmp_path):
        import os
        import subprocess
        import sys
        from pathlib import Path

        db = tmp_path / "prov.db"
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", self.CHILD, str(db)],
            env=env, capture_output=True, timeout=60.0,
        )
        assert proc.returncode == -9, proc.stderr.decode()
        with ProvenanceStore(db) as s:
            counts = s.counts_by_status(1)
            # Every terminal write survived the kill; the never-flushed
            # trailing begins are the only acceptable loss.
            assert counts.get("FINISHED") == 20


class TestJournalRows:
    def test_roundtrip_ordered_by_seq(self, store):
        wkfid = store.begin_workflow("W", starttime=0.0)
        store.record_journal_event(wkfid, 1, "scheduled", 0, "k", 0.5, b"x")
        store.record_journal_event(wkfid, 0, "run-started")
        rows = store.journal_events(wkfid)
        assert [r["seq"] for r in rows] == [0, 1]
        assert rows[1]["event"] == "scheduled"
        assert rows[1]["tuple_key"] == "k"
        assert rows[1]["ts"] == 0.5
        assert rows[1]["payload"] == b"x"
        # Other runs' events stay invisible.
        other = store.begin_workflow("W2", starttime=0.0)
        assert store.journal_events(other) == []

    def test_barrier_event_drains_write_buffer(self):
        s = ProvenanceStore(buffer_size=1000, flush_interval=3600.0)
        wkfid = s.begin_workflow("W", starttime=0.0)
        s.record_journal_event(wkfid, 0, "scheduled")
        assert s._pending_count > 0
        s.record_journal_event(wkfid, 1, "completed", barrier=True)
        assert s._pending_count == 0
        s.close()

    def test_eventids_resume_across_reopen(self, tmp_path):
        path = tmp_path / "prov.db"
        with ProvenanceStore(path) as s:
            wkfid = s.begin_workflow("W", starttime=0.0)
            first = s.record_journal_event(wkfid, 0, "run-started")
        with ProvenanceStore(path) as s2:
            nxt = s2.record_journal_event(wkfid, 1, "scheduled")
        assert nxt == first + 1
