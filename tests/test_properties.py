"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chem.atom import Atom
from repro.chem.formats.sdf import parse_sdf, write_sdf
from repro.chem.molecule import Molecule
from repro.cloud.simclock import SimClock
from repro.perf.metrics import efficiency, improvement_percent, speedup
from repro.workflow.messaging import MasterWorkerProtocol
from repro.workflow.relation import Relation, tuple_key
from repro.workflow.scheduler import GreedyCostScheduler, PendingActivation
from repro.cloud.cluster import CoreHandle

# -- strategies ---------------------------------------------------------------

elements = st.sampled_from(["C", "N", "O", "S", "H", "P", "F"])
coords3 = st.tuples(
    st.floats(-100, 100, allow_nan=False),
    st.floats(-100, 100, allow_nan=False),
    st.floats(-100, 100, allow_nan=False),
)


@st.composite
def molecules(draw, min_atoms=1, max_atoms=12):
    n = draw(st.integers(min_atoms, max_atoms))
    m = Molecule("HYP")
    for i in range(n):
        m.add_atom(Atom(i + 1, f"A{i + 1}", draw(elements), np.array(draw(coords3))))
    # A random spanning-tree-ish bond set keeps indices valid.
    for i in range(1, n):
        j = draw(st.integers(0, i - 1))
        if not m.has_bond(i, j):
            m.add_bond(i, j)
    return m


class TestMoleculeProperties:
    @given(molecules())
    @settings(max_examples=30, deadline=None)
    def test_sdf_roundtrip_preserves_structure(self, mol):
        back = parse_sdf(write_sdf(mol))
        assert len(back) == len(mol)
        assert len(back.bonds) == len(mol.bonds)
        assert np.allclose(back.coords, mol.coords, atol=1e-3)
        assert [a.element for a in back.atoms] == [a.element for a in mol.atoms]

    @given(molecules(min_atoms=2))
    @settings(max_examples=30, deadline=None)
    def test_copy_equals_original(self, mol):
        c = mol.copy()
        assert len(c) == len(mol)
        assert np.allclose(c.coords, mol.coords)
        assert {(b.i, b.j) for b in c.bonds} == {(b.i, b.j) for b in mol.bonds}

    @given(molecules(min_atoms=2), st.floats(-20, 20), st.floats(-20, 20))
    @settings(max_examples=30, deadline=None)
    def test_translation_is_additive(self, mol, dx, dy):
        before = mol.coords
        mol.translate([dx, dy, 0.0])
        mol.translate([-dx, -dy, 0.0])
        assert np.allclose(mol.coords, before, atol=1e-9)

    @given(molecules())
    @settings(max_examples=30, deadline=None)
    def test_formula_counts_all_atoms(self, mol):
        import re

        total = 0
        for sym, count in re.findall(r"([A-Z][a-z]?)(\d*)", mol.formula):
            if sym:
                total += int(count) if count else 1
        assert total == len(mol)

    @given(molecules(min_atoms=3))
    @settings(max_examples=30, deadline=None)
    def test_connected_components_partition(self, mol):
        comps = mol.connected_components()
        flat = sorted(i for comp in comps for i in comp)
        assert flat == list(range(len(mol)))


class TestRelationProperties:
    @given(st.lists(st.integers(0, 1000), min_size=0, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_append_preserves_order_and_length(self, values):
        rel = Relation("r", [{"x": v} for v in values])
        assert len(rel) == len(values)
        assert rel.column("x") == values if values else True

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_tuple_keys_unique_by_index(self, values):
        rel = Relation("r", [{"x": v} for v in values])
        keys = [tuple_key(t, i) for i, t in enumerate(rel)]
        assert len(set(keys)) == len(keys)


class TestSimClockProperties:
    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_events_fire_in_nondecreasing_time(self, delays):
        clock = SimClock()
        fired = []
        for d in delays:
            clock.schedule(d, lambda d=d: fired.append(clock.now))
        clock.run()
        assert fired == sorted(fired)
        assert clock.now == pytest.approx(max(delays))


class TestMetricsProperties:
    @given(
        st.floats(1, 1e6, allow_nan=False),
        st.floats(1, 1e6, allow_nan=False),
        st.integers(1, 512),
    )
    @settings(max_examples=50, deadline=None)
    def test_efficiency_is_speedup_over_cores(self, base, tet, cores):
        assert efficiency(base, tet, cores) == pytest.approx(
            speedup(base, tet) / cores
        )

    @given(st.floats(1, 1e6, allow_nan=False), st.floats(1, 1e6, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_improvement_bounded_above_by_100(self, base, tet):
        assert improvement_percent(base, tet) <= 100.0

    @given(st.floats(1, 1e6, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_no_change_no_improvement(self, t):
        assert improvement_percent(t, t) == pytest.approx(0.0)


class TestSchedulerProperties:
    @given(
        st.lists(st.floats(0.1, 1000, allow_nan=False), min_size=1, max_size=20),
        st.integers(1, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_greedy_assigns_min_of_jobs_and_cores(self, costs, n_cores):
        sched = GreedyCostScheduler()
        jobs = [PendingActivation(f"j{i}", c, i) for i, c in enumerate(costs)]
        cores = [
            CoreHandle(f"vm{i}", i, 1.0 + 0.1 * i, "m3.xlarge")
            for i in range(n_cores)
        ]
        pairs = sched.assign(jobs, cores)
        assert len(pairs) == min(len(jobs), len(cores))
        # The highest-cost job always goes to the fastest core.
        if pairs:
            assert pairs[0][0].expected_cost == max(costs)
            assert pairs[0][1].speed == max(c.speed for c in cores)

    @given(st.integers(1, 10000), st.integers(1, 128))
    @settings(max_examples=30, deadline=None)
    def test_overhead_monotone(self, n_ready, n_cores):
        sched = GreedyCostScheduler()
        assert sched.overhead_seconds(n_ready, n_cores) <= sched.overhead_seconds(
            n_ready + 1, n_cores
        )
        assert sched.overhead_seconds(n_ready, n_cores) <= sched.overhead_seconds(
            n_ready, n_cores + 1
        )


class TestMessagingProperties:
    @given(
        st.lists(st.floats(0.1, 10, allow_nan=False), min_size=1, max_size=15),
        st.integers(1, 6),
    )
    @settings(max_examples=20, deadline=None)
    def test_all_tasks_complete_and_makespan_bounded_below(self, services, workers):
        proto = MasterWorkerProtocol(n_workers=workers)
        makespan = proto.run(
            tasks=list(range(len(services))),
            service_fn=lambda t: services[t],
        )
        assert len(proto.results) == len(services)
        # Makespan can never beat perfect parallelism.
        assert makespan >= max(services) - 1e-9
        assert makespan >= sum(services) / workers - 1e-9
