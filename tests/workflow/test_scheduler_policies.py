"""Unit tests for schedulers, elasticity policies and fault primitives."""

import pytest

from repro.cloud.cluster import CoreHandle
from repro.workflow.adaptive import AdaptiveElasticityPolicy, StaticPolicy
from repro.workflow.fault import RetryPolicy, Watchdog
from repro.workflow.scheduler import (
    GreedyCostScheduler,
    PendingActivation,
    RoundRobinScheduler,
)


def core(speed=1.0, vm="i-1", idx=0, itype="m3.xlarge"):
    return CoreHandle(vm_id=vm, core_index=idx, speed=speed, instance_type=itype)


class TestGreedyCostScheduler:
    def test_longest_job_to_fastest_core(self):
        sched = GreedyCostScheduler()
        jobs = [
            PendingActivation("short", 1.0, 0),
            PendingActivation("long", 100.0, 1),
        ]
        cores = [core(speed=1.0, idx=0), core(speed=2.0, idx=1)]
        pairs = sched.assign(jobs, cores)
        assert pairs[0][0].key == "long"
        assert pairs[0][1].speed == 2.0

    def test_assign_limited_by_cores(self):
        sched = GreedyCostScheduler()
        jobs = [PendingActivation(f"j{i}", float(i), i) for i in range(5)]
        pairs = sched.assign(jobs, [core()])
        assert len(pairs) == 1
        assert pairs[0][0].key == "j4"

    def test_overhead_grows_with_load(self):
        sched = GreedyCostScheduler()
        small = sched.overhead_seconds(10, 8)
        large = sched.overhead_seconds(10_000, 128)
        assert large > small

    def test_priorities(self):
        sched = GreedyCostScheduler()
        assert sched.job_priority(PendingActivation("a", 9.0)) == 9.0
        assert sched.core_priority(core(speed=1.5)) == 1.5


class TestRoundRobinScheduler:
    def test_fifo_order(self):
        sched = RoundRobinScheduler()
        jobs = [
            PendingActivation("second", 100.0, arrival=2),
            PendingActivation("first", 1.0, arrival=1),
        ]
        pairs = sched.assign(jobs, [core()])
        assert pairs[0][0].key == "first"

    def test_constant_overhead(self):
        sched = RoundRobinScheduler()
        assert sched.overhead_seconds(10, 8) == sched.overhead_seconds(10_000, 128)


class TestElasticity:
    def test_static(self):
        assert StaticPolicy(16).target_cores(1000, 50, 100.0) == 16

    def test_adaptive_bounds(self):
        p = AdaptiveElasticityPolicy(min_cores=2, max_cores=32)
        assert p.target_cores(0, 0, 0.0) == 2
        assert p.target_cores(10_000, 100, 3600.0) == 32

    def test_adaptive_scales_with_backlog(self):
        p = AdaptiveElasticityPolicy(min_cores=2, max_cores=128)
        low = p.target_cores(4, 0, 60.0)
        high = p.target_cores(1000, 0, 60.0)
        assert high > low

    def test_adaptive_validation(self):
        with pytest.raises(ValueError):
            AdaptiveElasticityPolicy(min_cores=0)
        with pytest.raises(ValueError):
            AdaptiveElasticityPolicy(min_cores=8, max_cores=4)
        with pytest.raises(ValueError):
            AdaptiveElasticityPolicy(drain_horizon=0)
        with pytest.raises(ValueError):
            AdaptiveElasticityPolicy(scale_down_threshold=1.5)
        with pytest.raises(ValueError):
            AdaptiveElasticityPolicy(scale_down_threshold=-0.1)

    def test_scale_down_gated_by_utilization(self):
        # The queue shrank, but the cluster is still busy: hysteresis
        # holds the previous target until utilization actually drops
        # below scale_down_threshold.
        p = AdaptiveElasticityPolicy(
            min_cores=2, max_cores=128, scale_down_threshold=0.5
        )
        high = p.target_cores(64, 0, 60.0, utilization=1.0)
        held = p.target_cores(4, 0, 60.0, utilization=0.9)
        assert held == high
        released = p.target_cores(4, 0, 60.0, utilization=0.2)
        assert released < high

    def test_scale_up_never_gated(self):
        p = AdaptiveElasticityPolicy(
            min_cores=2, max_cores=128, scale_down_threshold=0.5
        )
        small = p.target_cores(4, 0, 60.0, utilization=1.0)
        grown = p.target_cores(64, 0, 60.0, utilization=1.0)
        assert grown > small

    def test_no_thrash_on_oscillating_queue(self):
        # Alternating long/short queue snapshots at high utilization
        # must not bounce the target down and back up each round.
        p = AdaptiveElasticityPolicy(
            min_cores=2, max_cores=128, scale_down_threshold=0.5
        )
        targets = []
        for n_ready in (64, 4, 64, 4, 64):
            targets.append(p.target_cores(n_ready, 0, 60.0, utilization=0.95))
        assert len(set(targets)) == 1

    def test_without_utilization_signal_behaves_greedily(self):
        # Callers that cannot measure utilization (e.g. legacy sweeps)
        # get the ungated queue-pressure policy.
        p = AdaptiveElasticityPolicy(min_cores=2, max_cores=128)
        high = p.target_cores(64, 0, 60.0)
        low = p.target_cores(4, 0, 60.0)
        assert low < high


class TestFaultPrimitives:
    def test_retry_policy(self):
        p = RetryPolicy(max_attempts=3)
        assert p.should_retry(0)
        assert p.should_retry(1)
        assert not p.should_retry(2)

    def test_retry_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(retry_delay=-1)

    def test_watchdog_deadline(self):
        w = Watchdog(timeout=600, multiplier=10)
        assert w.deadline(10.0) == 600.0  # floor
        assert w.deadline(100.0) == 1000.0  # multiplier

    def test_watchdog_validation(self):
        with pytest.raises(ValueError):
            Watchdog(timeout=0)
        with pytest.raises(ValueError):
            Watchdog(multiplier=1.0)
