"""Artifact plane: shared-memory publish/attach, disk cache, lifecycle."""

from __future__ import annotations

import glob
import json
import os
import threading

import numpy as np
import pytest

from repro.docking.autogrid import (
    AutoGrid,
    grid_maps_from_arrays,
    grid_maps_to_arrays,
)
from repro.docking.box import GridBox
from repro.docking.scoring_vina import (
    build_vina_maps,
    vina_maps_from_arrays,
    vina_maps_to_arrays,
)
from repro.chem.generate import generate_receptor
from repro.docking.prepare import prepare_receptor as do_prepare_receptor
from repro.workflow.artifacts import (
    ArtifactPlane,
    ArtifactPlaneError,
    DiskMapCache,
    attach_cached,
    drop_run_state,
    release_cached,
    run_state,
)


def _bundle(n: int = 4) -> tuple[dict, dict[str, np.ndarray]]:
    rng = np.random.default_rng(7)
    return (
        {"tag": "test", "n": n},
        {
            "alpha": rng.normal(size=(n, n, n)),
            "beta": rng.normal(size=(n + 1, n)),
        },
    )


def _leaked_segments(run_id: str) -> list[str]:
    return glob.glob(f"/dev/shm/rp{run_id[:8]}*")


class TestPlanePublishAttach:
    def test_built_then_shared(self, tmp_path):
        plane = ArtifactPlane.create(scratch_root=str(tmp_path))
        meta, arrays = _bundle()
        m1, a1, src1 = plane.get_or_build("kind", "k1", lambda: (meta, arrays))
        assert src1 == "built"
        assert m1 == meta
        for name in arrays:
            np.testing.assert_array_equal(a1[name], arrays[name])
            assert not a1[name].flags.writeable  # zero-copy read-only view

        calls = []
        m2, a2, src2 = plane.get_or_build(
            "kind", "k1", lambda: calls.append(1) or (meta, arrays)
        )
        assert src2 == "shm" and not calls
        np.testing.assert_array_equal(a2["alpha"], arrays["alpha"])
        plane.destroy()
        assert not _leaked_segments(plane.handle.run_id)

    def test_distinct_keys_distinct_segments(self, tmp_path):
        plane = ArtifactPlane.create(scratch_root=str(tmp_path))
        meta, arrays = _bundle()
        plane.get_or_build("kind", "k1", lambda: (meta, arrays))
        plane.get_or_build("kind", "k2", lambda: (meta, arrays))
        assert len(plane.segment_names()) == 2
        stats = plane.destroy()
        assert stats["builds"] == 2

    def test_concurrent_builders_build_once(self, tmp_path):
        plane = ArtifactPlane.create(scratch_root=str(tmp_path))
        meta, arrays = _bundle()
        builds = []

        def build():
            builds.append(1)
            return meta, arrays

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    plane.get_or_build("kind", "same", build)
                )
            )
            for _ in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1
        assert len(results) == 6
        for _, got, _ in results:
            np.testing.assert_array_equal(got["alpha"], arrays["alpha"])
        plane.destroy()

    def test_stats_aggregate_events(self, tmp_path):
        plane = ArtifactPlane.create(scratch_root=str(tmp_path))
        meta, arrays = _bundle()
        plane.get_or_build("kind", "k", lambda: (meta, arrays), label="2HHN")
        plane.get_or_build("kind", "k", lambda: (meta, arrays), label="2HHN")
        plane.get_or_build("kind", "k", lambda: (meta, arrays), label="2HHN")
        stats = plane.destroy()
        assert stats["builds"] == 1
        assert stats["shm_hits"] == 2
        assert stats["builds_by_artifact"] == {"kind:2HHN": 1}
        assert stats["hit_rate"] == pytest.approx(2 / 3, abs=1e-3)

    def test_only_owner_destroys(self, tmp_path):
        plane = ArtifactPlane.create(scratch_root=str(tmp_path))
        attached = ArtifactPlane.attach(plane.handle)
        with pytest.raises(ArtifactPlaneError):
            attached.destroy()
        plane.destroy()

    def test_destroy_survives_preregistered_missing_segment(self, tmp_path):
        # A worker that crashed between registering the name and creating
        # the segment leaves a registry entry with no segment behind.
        plane = ArtifactPlane.create(scratch_root=str(tmp_path))
        plane._record_segment(plane._segment_name("kind", "neverbuilt"))
        meta, arrays = _bundle()
        plane.get_or_build("kind", "real", lambda: (meta, arrays))
        plane.destroy()
        assert not _leaked_segments(plane.handle.run_id)

    def test_attach_cached_reuses_and_releases(self, tmp_path):
        plane = ArtifactPlane.create(scratch_root=str(tmp_path))
        a = attach_cached(plane.handle)
        b = attach_cached(plane.handle)
        assert a is b
        assert release_cached(plane.handle.scratch_dir)
        assert not release_cached(plane.handle.scratch_dir)
        plane.destroy()


class TestDiskMapCache:
    def test_roundtrip_and_hit(self, tmp_path):
        cache = DiskMapCache(str(tmp_path / "maps"))
        meta, arrays = _bundle()
        m1, a1, src1 = cache.get_or_build("ad4", "key", lambda: (meta, arrays))
        assert src1 == "built"
        m2, a2, src2 = cache.get_or_build(
            "ad4", "key", lambda: pytest.fail("must not rebuild")
        )
        assert src2 == "disk"
        assert m2 == meta
        for name in arrays:
            np.testing.assert_array_equal(a2[name], arrays[name])

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DiskMapCache(str(tmp_path))
        meta, arrays = _bundle()
        cache.save("ad4", "key", meta, arrays)
        with open(cache._path("ad4", "key"), "wb") as fh:
            fh.write(b"not an npz file")
        assert cache.load("ad4", "key") is None
        _, _, src = cache.get_or_build("ad4", "key", lambda: (meta, arrays))
        assert src == "built"

    def test_plane_promotes_disk_hit_to_shm(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        meta, arrays = _bundle()
        DiskMapCache(cache_dir).save("kind", "k", meta, arrays)
        plane = ArtifactPlane.create(
            scratch_root=str(tmp_path), map_cache_dir=cache_dir
        )
        _, got, src = plane.get_or_build(
            "kind", "k", lambda: pytest.fail("disk entry must satisfy this")
        )
        assert src == "disk"
        np.testing.assert_array_equal(got["alpha"], arrays["alpha"])
        # Now it is published: the next reader hits shared memory.
        _, _, src2 = plane.get_or_build("kind", "k", lambda: None)
        assert src2 == "shm"
        stats = plane.destroy()
        assert stats["disk_hits"] == 1 and stats["builds"] == 0


class TestMapBundleRoundtrips:
    @pytest.fixture(scope="class")
    def receptor_prep(self):
        return do_prepare_receptor(generate_receptor("2HHN"))

    def test_grid_maps_roundtrip(self, receptor_prep):
        box = GridBox.around_pocket(
            np.array(generate_receptor("2HHN").metadata["pocket_center"]),
            generate_receptor("2HHN").metadata["pocket_radius"],
            spacing=1.2,
        )
        maps = AutoGrid().run(receptor_prep.molecule, box, ("C", "OA", "HD"))
        meta, arrays = grid_maps_to_arrays(maps)
        restored = grid_maps_from_arrays(
            json.loads(json.dumps(meta)), arrays
        )
        assert restored.atom_types == maps.atom_types
        assert restored.box.npts == maps.box.npts
        np.testing.assert_array_equal(restored.box.center, maps.box.center)
        np.testing.assert_array_equal(
            restored.electrostatic, maps.electrostatic
        )
        np.testing.assert_array_equal(restored.desolvation, maps.desolvation)
        for t in maps.atom_types:
            np.testing.assert_array_equal(restored.affinity[t], maps.affinity[t])

    def test_vina_maps_roundtrip(self, receptor_prep):
        box = GridBox.around_pocket(
            np.array(generate_receptor("2HHN").metadata["pocket_center"]),
            generate_receptor("2HHN").metadata["pocket_radius"],
            spacing=1.2,
        )
        vmaps = build_vina_maps(receptor_prep.molecule, box)
        meta, arrays = vina_maps_to_arrays(vmaps)
        restored = vina_maps_from_arrays(json.loads(json.dumps(meta)), arrays)
        assert set(restored.grids) == set(vmaps.grids)
        for cls, grid in vmaps.grids.items():
            np.testing.assert_array_equal(restored.grids[cls], grid)


class TestRunState:
    def test_state_persists_until_dropped(self):
        token = "tok-artifact-plane-test"
        state = run_state(token)
        state["caches"] = {"x": 1}
        assert run_state(token)["caches"] == {"x": 1}
        assert drop_run_state(token)
        assert "caches" not in run_state(token)
        drop_run_state(token)

    def test_drop_missing_token_is_false(self):
        assert not drop_run_state("never-created-token")
        assert not drop_run_state(None)
