"""Director child for the distributed SIGKILL crash-resume chaos test.

Runs a real two-stage pipeline on the *distributed* backend: this
process hosts the director and spawns its own two worker-node
subprocesses (same process group, so the parent's ``killpg`` takes the
director and every node down together). The provenance store's write
buffer is effectively infinite, so the only records that reach disk
before the kill are the run journal's terminal-event flush barriers.
``slow-*`` keys spin in the final stage while the gate file exists,
guaranteeing the parent kills us mid-pipeline.
"""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
SRC = HERE.parents[1] / "src"

# Reuse an already-registered copy (the test module loads one) so a
# second module object never shadows the name pickle resolves against.
da = sys.modules.get("_dist_activities")
if da is None:
    _spec = importlib.util.spec_from_file_location(
        "_dist_activities", HERE / "_dist_activities.py"
    )
    da = importlib.util.module_from_spec(_spec)
    sys.modules["_dist_activities"] = da
    _spec.loader.exec_module(da)

from repro.provenance.store import ProvenanceStore  # noqa: E402
from repro.workflow.activity import Activity, Operator, Workflow  # noqa: E402
from repro.workflow.engine import LocalEngine  # noqa: E402
from repro.workflow.relation import Relation  # noqa: E402

KEYS = ["fast-a", "fast-b", "fast-c", "fast-d", "slow-x"]


def build_workflow() -> Workflow:
    return Workflow(
        "distcrash",
        [
            Activity("stage1", Operator.MAP, fn=da.prep),
            Activity("stage2", Operator.MAP, fn=da.gated),
        ],
    )


def build_relation() -> Relation:
    return Relation("in", [{"key": k} for k in KEYS])


def main(db_path: str, gate_path: str, mode: str = "plain") -> None:
    store = ProvenanceStore(
        db_path, buffer_size=100_000, flush_interval=3600.0
    )
    # "batched" exercises the TASK_BATCH + zlib wire path so the parent
    # can assert crash-resume semantics survive transport batching.
    wire_kwargs = (
        {"batch_size": 4, "batch_linger": 0.02, "compress_frames": True}
        if mode == "batched"
        else {}
    )
    engine = LocalEngine(
        store,
        workers=2,
        backend="distributed",
        min_nodes=2,
        join_timeout=30.0,
        **wire_kwargs,
    )
    host, port = engine.director_address
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC), str(HERE), env.get("PYTHONPATH", "")]
    )
    for i in range(2):
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.workflow.worker",
                "--join",
                f"{host}:{port}",
                "--slots",
                "2",
                "--node-id",
                f"crash-node-{i}",
            ],
            env=env,
        )
    engine.run(
        build_workflow(),
        build_relation(),
        context={"shared_maps": False, "gate_path": gate_path},
    )
    engine.shutdown()
    store.close()


if __name__ == "__main__":
    main(
        sys.argv[1],
        sys.argv[2],
        sys.argv[3] if len(sys.argv) > 3 else "plain",
    )
