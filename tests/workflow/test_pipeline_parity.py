"""Pipelined vs barrier execution: golden parity and dispatch semantics.

The dataflow refactor dissolved the per-activity barriers; these tests
pin the contract that pipelining changes *when* activations run, never
*what* the workflow computes: final relation contents (order-
insensitive), per-activation provenance statuses, FILTER-drop and
reserved-field semantics must be identical across both modes, both
LocalEngine backends and the SimulatedEngine.
"""

import threading

import pytest

from repro.cloud.cluster import VirtualCluster
from repro.cloud.provider import CloudProvider
from repro.cloud.simclock import SimClock
from repro.provenance.queries import lineage_chain
from repro.provenance.store import ProvenanceStore
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.engine import LocalEngine, SimulatedEngine
from repro.workflow.relation import Relation
from repro.workflow.scheduler import GreedyCostScheduler
from repro.workflow.steering import SteeringControl


# Module-level activation callables: the processes backend pickles them.
def double(t, c):
    return [{"x": t["x"] * 2}]


def fanout(t, c):
    return [{"x": t["x"]}, {"x": t["x"] + 1}]


def keep_positive(t, c):
    return [t] if t["x"] > 2 else []


def total(t, c):
    return [{"total": sum(u["x"] for u in t["__tuples__"])}]


def with_files(t, c):
    return [{
        "x": t["x"],
        "_files": [(f"out_{t['x']}.dlg", 128, "/tmp")],
    }]


def parity_workflow() -> Workflow:
    return Workflow(
        "toy",
        [
            Activity("double", Operator.MAP, fn=double, cost_fn=lambda t: 5.0),
            Activity("fanout", Operator.SPLIT_MAP, fn=fanout, cost_fn=lambda t: 2.0),
            Activity("positive", Operator.FILTER, fn=keep_positive, cost_fn=lambda t: 1.0),
            Activity("sum", Operator.REDUCE, fn=total, cost_fn=lambda t: 3.0),
        ],
    )


INPUT = [{"x": i} for i in range(5)]
EXPECTED_TOTAL = 42


def run_local(pipeline: bool, backend: str):
    store = ProvenanceStore()
    engine = LocalEngine(store, workers=3, backend=backend, pipeline=pipeline)
    report = engine.run(parity_workflow(), Relation("in", [dict(t) for t in INPUT]))
    return report, store


def run_sim(pipeline: bool):
    clock = SimClock()
    cluster = VirtualCluster(CloudProvider(clock))
    cluster.scale_to(4)
    store = ProvenanceStore()
    engine = SimulatedEngine(store, cluster, pipeline=pipeline)
    report = engine.run(parity_workflow(), Relation("in", [dict(t) for t in INPUT]))
    return report, store


def fingerprint(report, store):
    """Everything that must not depend on barrier placement."""
    outputs = sorted(
        tuple(sorted(t.items())) for t in report.output
    )
    statuses = {
        (r["tag"], r["status"]): r["n"]
        for r in store.sql(
            """
            SELECT a.tag, t.status, COUNT(*) AS n
            FROM hactivation t JOIN hactivity a ON t.actid = a.actid
            WHERE a.wkfid = ? GROUP BY a.tag, t.status
            """,
            (report.wkfid,),
        )
    }
    return outputs, statuses, report.total_activations


class TestGoldenParity:
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_local_pipelined_matches_barrier(self, backend):
        pipelined = fingerprint(*run_local(True, backend))
        barrier = fingerprint(*run_local(False, backend))
        assert pipelined == barrier
        assert pipelined[0][0] == (("total", EXPECTED_TOTAL),)

    def test_sim_pipelined_matches_barrier(self):
        pipelined = fingerprint(*run_sim(True))
        barrier = fingerprint(*run_sim(False))
        assert pipelined == barrier

    def test_local_matches_sim(self):
        local = fingerprint(*run_local(True, "threads"))
        sim = fingerprint(*run_sim(True))
        assert local == sim

    @pytest.mark.parametrize("pipeline", [True, False])
    def test_reserved_fields_stripped_and_recorded(self, pipeline):
        wf = Workflow(
            "files",
            [
                Activity("emit", Operator.MAP, fn=with_files),
                Activity("tail", Operator.MAP, fn=lambda t, c: [dict(t)]),
            ],
        )
        store = ProvenanceStore()
        report = LocalEngine(store, workers=2, pipeline=pipeline).run(
            wf, Relation("in", [{"x": 1}, {"x": 2}])
        )
        assert all("_files" not in t for t in report.output)
        rows = store.sql(
            "SELECT fname FROM hfile ORDER BY fname", ()
        )
        assert [r["fname"] for r in rows] == ["out_1.dlg", "out_2.dlg"]

    @pytest.mark.parametrize("pipeline", [True, False])
    def test_filter_drops_reach_no_downstream(self, pipeline):
        wf = Workflow(
            "filters",
            [
                Activity("pos", Operator.FILTER, fn=keep_positive),
                Activity("tail", Operator.MAP, fn=lambda t, c: [dict(t)]),
            ],
        )
        store = ProvenanceStore()
        report = LocalEngine(store, workers=2, pipeline=pipeline).run(
            wf, Relation("in", [{"x": 1}, {"x": 5}])
        )
        assert [t["x"] for t in report.output] == [5]
        rows = store.sql(
            """
            SELECT COUNT(*) AS n FROM hactivation t
            JOIN hactivity a ON t.actid = a.actid
            WHERE a.wkfid = ? AND a.tag = 'tail'
            """,
            (report.wkfid,),
        )
        assert rows[0]["n"] == 1  # only the surviving tuple ran 'tail'


class TestSchedulerDispatch:
    def test_greedy_scheduler_reorders_real_dispatch(self):
        """GreedyCostScheduler must change actual LocalEngine dispatch
        order, not just simulated order — the refactor's point."""

        def make_run(scheduler):
            order = []
            wf = Workflow(
                "sched",
                [
                    Activity(
                        "work", Operator.MAP,
                        fn=lambda t, c: order.append(t["key"]) or [dict(t)],
                        cost_fn=lambda t: t["cost"],
                    ),
                ],
            )
            rel = Relation("in", [
                {"key": "cheap", "cost": 1.0},
                {"key": "dear", "cost": 9.0},
                {"key": "mid", "cost": 3.0},
            ])
            LocalEngine(
                ProvenanceStore(), workers=1, scheduler=scheduler
            ).run(wf, rel)
            return order

        fifo = make_run(None)
        greedy = make_run(GreedyCostScheduler())
        assert fifo == ["cheap", "dear", "mid"]  # arrival order
        assert greedy == ["dear", "mid", "cheap"]  # descending cost
        assert fifo != greedy


class TestSteeringRace:
    @pytest.mark.parametrize("pipeline", [True, False])
    def test_rule_installed_mid_run_blocks_queued_tuple(self, pipeline):
        """A steering rule installed while a tuple is already enumerated
        (queued, undispatched) must still stop it: should_abort is
        checked at dispatch time, not enumeration time."""
        control = SteeringControl()

        def work(t, c):
            if t["key"] == "a":
                c["steering"].abort_tuple("b")
            return [dict(t)]

        wf = Workflow("w", [Activity("work", Operator.MAP, fn=work)])
        store = ProvenanceStore()
        report = LocalEngine(store, workers=1, pipeline=pipeline).run(
            wf,
            Relation("in", [{"key": "a"}, {"key": "b"}]),
            context={"steering": control},
        )
        assert report.blocked == 1
        assert [t["key"] for t in report.output] == ["a"]
        blocked = store.sql(
            "SELECT tuple_key, errormsg FROM hactivation"
            " WHERE status = 'BLOCKED'", ()
        )
        assert blocked[0]["tuple_key"] == "b"
        assert "steering" in blocked[0]["errormsg"]


class TestPeakCores:
    def test_peak_cores_reports_observed_concurrency(self):
        """peak_cores is what actually ran concurrently, not the
        configured worker count."""
        barrier = threading.Barrier(3, timeout=10)

        def rendezvous(t, c):
            barrier.wait()
            return [dict(t)]

        wf = Workflow("w", [Activity("work", Operator.MAP, fn=rendezvous)])
        report = LocalEngine(ProvenanceStore(), workers=8).run(
            wf, Relation("in", [{"key": f"k{i}"} for i in range(3)])
        )
        assert report.peak_cores == 3  # 3 tuples, despite 8 workers

    def test_single_tuple_peaks_at_one(self):
        wf = Workflow(
            "w", [Activity("work", Operator.MAP, fn=lambda t, c: [dict(t)])]
        )
        report = LocalEngine(ProvenanceStore(), workers=8).run(
            wf, Relation("in", [{"key": "only"}])
        )
        assert report.peak_cores == 1


class TestLineageQueries:
    def test_chain_reconstructs_anonymous_tuple_lineage(self):
        """An output tuple with hash-derived keys walks back through
        every stage to its input-relation root."""
        wf = Workflow(
            "anon",
            [
                Activity("a", Operator.MAP, fn=lambda t, c: [{"x": t["x"]}]),
                Activity(
                    "b", Operator.SPLIT_MAP,
                    fn=lambda t, c: [{"x": t["x"]}, {"x": t["x"] + 10}],
                ),
                Activity("c", Operator.MAP, fn=lambda t, c: [{"x": t["x"]}]),
            ],
        )
        store = ProvenanceStore()
        report = LocalEngine(store, workers=2).run(
            wf, Relation("in", [{"x": 0}, {"x": 1}])
        )
        leaves = store.sql(
            """
            SELECT DISTINCT t.tuple_key FROM hactivation t
            JOIN hactivity a ON t.actid = a.actid
            WHERE a.wkfid = ? AND a.tag = 'c'
            """,
            (report.wkfid,),
        )
        assert len(leaves) == 4  # 2 inputs x 2-way split
        for leaf in leaves:
            chain = lineage_chain(store, report.wkfid, leaf["tuple_key"])
            assert [s.tag for s in chain] == ["a", "b", "c"]
            assert chain[0].tuple_key in ("tuple-0", "tuple-1")
            assert all(s.status == "FINISHED" for s in chain)
            assert chain[-1].tuple_key == leaf["tuple_key"]

    def test_chain_falls_back_without_edges(self):
        """Single-activity workflows spawn no edges; the query falls
        back to the key's own activations."""
        wf = Workflow(
            "w", [Activity("only", Operator.MAP, fn=lambda t, c: [dict(t)])]
        )
        store = ProvenanceStore()
        report = LocalEngine(store, workers=1).run(
            wf, Relation("in", [{"key": "k"}])
        )
        chain = lineage_chain(store, report.wkfid, "k")
        assert [s.tag for s in chain] == ["only"]
        assert chain[0].status == "FINISHED"
