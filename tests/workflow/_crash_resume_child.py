"""Coordinator child for the SIGKILL crash-resume chaos test.

Runs a real two-stage pipeline on the processes backend against a
file-backed provenance store whose write buffer is effectively infinite
(huge ``buffer_size``/``flush_interval``), so the *only* way any record
reaches disk before the parent SIGKILLs this process group is the run
journal's terminal-event flush barrier. The ``slow-*`` keys spin in the
final stage while the gate file exists, guaranteeing the run never
finishes on its own — the parent kills us mid-pipeline, removes the
gate, and resumes from the journal.

Module-level functions only: the processes backend pickles activation
callables by reference.
"""

import sys
import time
from pathlib import Path

from repro.provenance.store import ProvenanceStore
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.engine import LocalEngine
from repro.workflow.relation import Relation

KEYS = ["fast-a", "fast-b", "fast-c", "fast-d", "slow-x"]


def stage1(t, c):
    return [dict(t)]


def stage2(t, c):
    if t["key"].startswith("slow"):
        gate = Path(c["gate_path"])
        while gate.exists():
            time.sleep(0.05)
    return [{"key": t["key"], "out": t["key"].upper()}]


def build_workflow() -> Workflow:
    return Workflow(
        "crashwf",
        [
            Activity("stage1", Operator.MAP, fn=stage1),
            Activity("stage2", Operator.MAP, fn=stage2),
        ],
    )


def build_relation() -> Relation:
    return Relation("in", [{"key": k} for k in KEYS])


def main(db_path: str, gate_path: str) -> None:
    store = ProvenanceStore(db_path, buffer_size=100_000, flush_interval=3600.0)
    engine = LocalEngine(store, workers=2, backend="processes")
    engine.run(
        build_workflow(),
        build_relation(),
        context={"shared_maps": False, "gate_path": gate_path},
    )
    store.close()


if __name__ == "__main__":
    main(sys.argv[1], sys.argv[2])
