"""Unit tests for the fault-policy primitives: backoff schedules,
jitter determinism, watchdog deadlines, cancellation tokens and the
fault injector's planning."""

from __future__ import annotations

import threading

import pytest

from repro.cloud.failures import ActivityFailureModel, LoopingStateModel
from repro.workflow.fault import (
    ActivationCancelled,
    CancellationToken,
    CancelTokenHandle,
    FaultInjector,
    RetryPolicy,
    Watchdog,
)


class TestRetryPolicyBackoff:
    def test_exponential_schedule(self):
        policy = RetryPolicy(base_delay=0.5, backoff_factor=2.0, max_delay=60.0)
        assert policy.schedule(4) == [0.5, 1.0, 2.0, 4.0]

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(base_delay=1.0, backoff_factor=10.0, max_delay=5.0)
        assert policy.schedule(3) == [1.0, 5.0, 5.0]

    def test_base_delay_defaults_to_retry_delay(self):
        # Legacy call sites configure retry_delay only; it is the base.
        policy = RetryPolicy(retry_delay=0.25, backoff_factor=2.0)
        assert policy.delay(0) == 0.25
        assert policy.delay(1) == 0.5

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, backoff_factor=1.0, jitter=0.2, seed=5)
        d1 = policy.delay(0, "lig_rec")
        d2 = policy.delay(0, "lig_rec")
        assert d1 == d2
        assert 0.8 <= d1 <= 1.2
        assert d1 != policy.delay(0, "other_key")
        # A different seed perturbs differently.
        assert d1 != RetryPolicy(
            base_delay=1.0, backoff_factor=1.0, jitter=0.2, seed=6
        ).delay(0, "lig_rec")

    def test_zero_jitter_ignores_key(self):
        policy = RetryPolicy(base_delay=1.0)
        assert policy.delay(1, "a") == policy.delay(1, "b") == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"retry_delay": -1.0},
            {"base_delay": -0.1},
            {"backoff_factor": 0.5},
            {"max_delay": -1.0},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"max_infra_retries": -1},
            {"quarantine_after": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestWatchdogDeadline:
    def test_deadline_floor_and_multiplier(self):
        wd = Watchdog(timeout=10.0, multiplier=5.0)
        assert wd.deadline(1.0) == 10.0  # floored
        assert wd.deadline(4.0) == 20.0  # multiplier wins
        assert wd.deadline(-3.0) == 10.0  # negative cost clamped

    def test_validation(self):
        with pytest.raises(ValueError):
            Watchdog(timeout=0.0)
        with pytest.raises(ValueError):
            Watchdog(multiplier=1.0)
        with pytest.raises(ValueError):
            Watchdog(grace=-0.1)


class TestCancellationToken:
    def test_check_raises_only_after_cancel(self):
        token = CancellationToken()
        token.check()  # no-op while live
        token.cancel()
        assert token.cancelled
        with pytest.raises(ActivationCancelled):
            token.check()

    def test_sleep_interrupted_by_cancel(self):
        token = CancellationToken()
        timer = threading.Timer(0.05, token.cancel)
        timer.start()
        with pytest.raises(ActivationCancelled):
            token.sleep(30.0)
        timer.cancel()

    def test_handle_delegates_per_thread(self):
        handle = CancelTokenHandle()
        # Unbound threads see a null token: never cancelled.
        handle.check()
        assert not handle.cancelled
        mine = CancellationToken()
        handle.bind(mine)
        seen = {}

        def other_thread():
            # A different thread's view is not affected by this
            # thread's binding.
            seen["cancelled"] = handle.cancelled

        mine.cancel()
        worker = threading.Thread(target=other_thread)
        worker.start()
        worker.join()
        assert handle.cancelled
        assert seen["cancelled"] is False


class TestFaultInjectorPlan:
    def test_hang_takes_precedence(self):
        inj = FaultInjector(
            looping_model=LoopingStateModel(
                hg_loops=False, extra_looping_keys={"dock:a"}
            ),
            crash_keys=frozenset({"dock:a"}),
        )
        assert inj.plan("dock:a", 0) == "hang"

    def test_bernoulli_rerolls_per_try(self):
        inj = FaultInjector(failure_model=ActivityFailureModel(rate=0.5, seed=1))
        fates = {inj.plan("dock:k", t) for t in range(16)}
        assert fates == {"ok", "fail"}

    def test_crash_rate_deterministic(self):
        inj = FaultInjector(crash_rate=0.5, seed=9)
        first = [inj.plan(f"dock:k{i}", 0) for i in range(16)]
        assert first == [inj.plan(f"dock:k{i}", 0) for i in range(16)]
        assert "crash" in first and "ok" in first

    def test_default_injector_is_inert(self):
        inj = FaultInjector()
        assert all(inj.plan(f"t:k{i}", j) == "ok" for i in range(4) for j in range(3))
