"""Unit tests for the shared dataflow dispatch core."""

from repro.provenance.store import ProvenanceStore
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.dataflow import (
    LINEAGE_PREFIX,
    DataflowState,
    ReadyQueue,
    WorkItem,
    lineage_key,
)
from repro.workflow.relation import Relation
from repro.workflow.scheduler import GreedyCostScheduler


def two_map_workflow() -> Workflow:
    return Workflow(
        "w",
        [
            Activity("a", Operator.MAP, fn=lambda t, c: [dict(t)]),
            Activity("b", Operator.MAP, fn=lambda t, c: [dict(t)]),
        ],
    )


def reduce_workflow() -> Workflow:
    return Workflow(
        "w",
        [
            Activity("a", Operator.MAP, fn=lambda t, c: [dict(t)]),
            Activity(
                "total", Operator.REDUCE,
                fn=lambda t, c: [{"n": len(t["__tuples__"])}],
            ),
        ],
    )


class TestLineageKey:
    def test_explicit_key_field_wins(self):
        assert lineage_key({"key": "abc", "x": 1}, "p", "dock", 0) == "abc"

    def test_scidock_pair_convention(self):
        tup = {"ligand_id": "ZINC1", "receptor_id": "1ABC"}
        assert lineage_key(tup, "p", "dock", 3) == "ZINC1_1ABC"

    def test_anonymous_fallback_is_deterministic(self):
        k1 = lineage_key({"x": 1}, "parent", "dock", 0)
        k2 = lineage_key({"x": 999}, "parent", "dock", 0)
        assert k1 == k2  # derived from lineage, not tuple contents
        assert k1.startswith(LINEAGE_PREFIX)

    def test_anonymous_fallback_varies_by_lineage(self):
        base = lineage_key({}, "parent", "dock", 0)
        assert lineage_key({}, "parent", "dock", 1) != base
        assert lineage_key({}, "parent", "prep", 0) != base
        assert lineage_key({}, "other", "dock", 0) != base


class TestReadyQueue:
    def test_fifo_without_scheduler(self):
        q = ReadyQueue()
        items = [WorkItem(0, {}, f"k{i}") for i in range(4)]
        for item, cost in zip(items, (1.0, 9.0, 3.0, 7.0)):
            q.push(item, cost)
        assert [q.pop().key for _ in range(4)] == ["k0", "k1", "k2", "k3"]

    def test_greedy_scheduler_orders_by_cost(self):
        q = ReadyQueue(GreedyCostScheduler())
        for i, cost in enumerate((1.0, 9.0, 3.0, 7.0)):
            q.push(WorkItem(0, {}, f"k{i}"), cost)
        assert [q.pop().key for _ in range(4)] == ["k1", "k3", "k2", "k0"]

    def test_len_and_bool(self):
        q = ReadyQueue()
        assert not q and len(q) == 0
        q.push(WorkItem(0, {}, "k"))
        assert q and len(q) == 1

    def test_equal_cost_ties_break_on_lineage_key(self):
        """Equal priorities pop in lexicographic key order regardless of
        insertion (= completion) order — the determinism the distributed
        pull protocol relies on for identical task handout sequences."""
        keys = ["k3", "k0", "k2", "k1"]
        q = ReadyQueue(GreedyCostScheduler())
        for k in keys:
            q.push(WorkItem(0, {}, k), 5.0)
        assert [q.pop().key for _ in range(4)] == ["k0", "k1", "k2", "k3"]

        # Any permutation of arrivals yields the same pop order.
        import itertools

        for perm in itertools.permutations(keys):
            q = ReadyQueue(GreedyCostScheduler())
            for k in perm:
                q.push(WorkItem(0, {}, k), 5.0)
            assert [q.pop().key for _ in range(4)] == ["k0", "k1", "k2", "k3"]

    def test_priority_still_beats_key_tiebreak(self):
        q = ReadyQueue(GreedyCostScheduler())
        q.push(WorkItem(0, {}, "aaa"), 1.0)
        q.push(WorkItem(0, {}, "zzz"), 9.0)
        assert q.pop().key == "zzz"

    def test_fifo_unchanged_without_scheduler(self):
        """No scheduler → plain arrival order, even for sortable keys."""
        q = ReadyQueue()
        for k in ["k3", "k0", "k2", "k1"]:
            q.push(WorkItem(0, {}, k))
        assert [q.pop().key for _ in range(4)] == ["k3", "k0", "k2", "k1"]


class TestPipelinedDataflow:
    def test_output_spawns_downstream_immediately(self):
        state = DataflowState(two_map_workflow(), pipeline=True)
        items = state.seed(Relation("in", [{"x": 0}, {"x": 1}]))
        assert [i.stage for i in items] == [0, 0]
        # Completing ONE stage-0 item releases its stage-1 child even
        # though its sibling is still in flight — no cohort barrier.
        children = state.complete(items[0], [{"x": 0}])
        assert [i.stage for i in children] == [1]
        assert not state.done()

    def test_done_after_all_retire(self):
        state = DataflowState(two_map_workflow(), pipeline=True)
        items = state.seed(Relation("in", [{"x": 0}]))
        (child,) = state.complete(items[0], [{"x": 0}])
        assert state.complete(child, [{"x": 0}]) == []
        assert state.done()
        assert state.final == [{"x": 0}]
        assert state.spawned == 2

    def test_filter_drop_spawns_nothing(self):
        state = DataflowState(two_map_workflow(), pipeline=True)
        items = state.seed(Relation("in", [{"x": 0}]))
        assert state.retire(items[0]) == []
        assert state.done()
        assert state.final == []


class TestBarrierDataflow:
    def test_stage_waits_for_entire_cohort(self):
        state = DataflowState(two_map_workflow(), pipeline=False)
        items = state.seed(Relation("in", [{"x": 0}, {"x": 1}]))
        assert [i.stage for i in items] == [0, 0]
        assert state.complete(items[0], [{"x": 0}]) == []  # parked
        released = state.complete(items[1], [{"x": 1}])
        assert [i.stage for i in released] == [1, 1]

    def test_keys_match_pipelined_mode(self):
        rel = Relation("in", [{"x": 0}, {"x": 1}])

        def run(pipeline):
            state = DataflowState(two_map_workflow(), pipeline=pipeline)
            items = list(state.seed(rel))
            keys = []
            while items:
                item = items.pop(0)
                keys.append((item.stage, item.key))
                items.extend(state.complete(item, [dict(item.tup)]))
            return sorted(keys)

        assert run(True) == run(False)


class TestReduceBarrier:
    def test_reduce_barriers_even_when_pipelined(self):
        state = DataflowState(reduce_workflow(), pipeline=True)
        items = state.seed(Relation("in", [{"x": 0}, {"x": 1}]))
        assert state.complete(items[0], [{"x": 0}]) == []  # buffered
        (red,) = state.complete(items[1], [{"x": 1}])
        assert red.stage == 1
        assert red.key == "reduce-total"
        assert red.tup == {"__tuples__": [{"x": 0}, {"x": 1}]}

    def test_reduce_fires_once_over_empty_stream(self):
        state = DataflowState(reduce_workflow(), pipeline=True)
        items = state.seed(Relation("in", [{"x": 0}]))
        # The only upstream tuple is dropped; REDUCE still runs, over
        # zero tuples — matching the historical engines.
        (red,) = state.retire(items[0])
        assert red.stage == 1
        assert red.tup == {"__tuples__": []}
        assert state.spawned == 2

    def test_reduce_as_first_stage_absorbs_the_seed(self):
        wf = Workflow(
            "w",
            [Activity("total", Operator.REDUCE, fn=lambda t, c: [t])],
        )
        state = DataflowState(wf, pipeline=True)
        (red,) = state.seed(Relation("in", [{"x": 1}, {"x": 2}]))
        assert red.key == "reduce-total"
        assert len(red.tup["__tuples__"]) == 2


class TestDependencyEdges:
    def test_spawn_records_parent_child_edges(self):
        store = ProvenanceStore()
        wkfid = store.begin_workflow("w", "", "", "", starttime=0.0)
        actids = {
            "a": store.register_activity(wkfid, "a", "", "", "", "MAP"),
            "b": store.register_activity(wkfid, "b", "", "", "", "MAP"),
        }
        state = DataflowState(
            two_map_workflow(), pipeline=True,
            store=store, wkfid=wkfid, actids=actids,
        )
        items = state.seed(Relation("in", [{"ligand_id": "L", "receptor_id": "R"}]))
        state.complete(items[0], [{"ligand_id": "L", "receptor_id": "R"}])
        rows = store.sql(
            "SELECT child_key, child_actid, parent_key, parent_actid"
            " FROM hdependency WHERE wkfid = ?",
            (wkfid,),
        )
        assert len(rows) == 1
        assert rows[0]["parent_key"] == "L_R"
        assert rows[0]["child_key"] == "L_R"
        assert rows[0]["parent_actid"] == actids["a"]
        assert rows[0]["child_actid"] == actids["b"]

    def test_reduce_edges_fan_in(self):
        store = ProvenanceStore()
        wkfid = store.begin_workflow("w", "", "", "", starttime=0.0)
        actids = {
            "a": store.register_activity(wkfid, "a", "", "", "", "MAP"),
            "total": store.register_activity(
                wkfid, "total", "", "", "", "REDUCE"
            ),
        }
        state = DataflowState(
            reduce_workflow(), pipeline=True,
            store=store, wkfid=wkfid, actids=actids,
        )
        items = state.seed(
            Relation("in", [{"key": "a1"}, {"key": "a2"}])
        )
        for item in items:
            state.complete(item, [dict(item.tup)])
        rows = store.sql(
            "SELECT parent_key FROM hdependency"
            " WHERE wkfid = ? AND child_key = 'reduce-total'"
            " ORDER BY parent_key",
            (wkfid,),
        )
        assert [r["parent_key"] for r in rows] == ["a1", "a2"]
