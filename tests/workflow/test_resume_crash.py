"""Chaos harness: SIGKILL the coordinator mid-pipeline, resume from journal.

The acceptance case for the run journal. A child process runs a real
processes-backend pipeline against a file-backed store whose batched
write path never flushes on its own (see ``_crash_resume_child``); the
parent waits until the journal shows final-stage completions, SIGKILLs
the whole child process group, reopens the store, and asserts that
``LocalEngine.resume`` finishes the run with **zero re-execution of any
tuple the crashed run durably completed** and strictly monotonic journal
sequence numbers in both runs.
"""

import importlib.util
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

from repro.provenance.store import ProvenanceStore
from repro.workflow.engine import LocalEngine
from repro.workflow.journal import replay_journal

_HERE = Path(__file__).resolve().parent
CHILD = _HERE / "_crash_resume_child.py"
SRC = _HERE.parents[1] / "src"

_spec = importlib.util.spec_from_file_location("_crash_resume_child", CHILD)
child = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(child)

#: Final-stage index of the child's two-activity workflow.
LAST_STAGE = 1


def _completed_last_stage(db: Path) -> int:
    """Durably journaled final-stage completions, read concurrently (WAL)."""
    try:
        con = sqlite3.connect(db, timeout=2.0)
    except sqlite3.Error:
        return 0
    try:
        row = con.execute(
            "SELECT COUNT(*) FROM hjournal WHERE event = 'completed'"
            " AND stage = ?",
            (LAST_STAGE,),
        ).fetchone()
        return int(row[0])
    except sqlite3.Error:
        return 0
    finally:
        con.close()


def _wait_for_completions(db: Path, proc, want: int, timeout: float) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate()
            raise AssertionError(
                "child exited before the kill (the gate should have "
                f"pinned it): rc={proc.returncode}\n{err.decode()}"
            )
        if _completed_last_stage(db) >= want:
            return
        time.sleep(0.1)
    raise AssertionError(
        f"timed out waiting for {want} journaled completions "
        f"(saw {_completed_last_stage(db)})"
    )


def test_sigkill_coordinator_then_resume_with_zero_recomputation(tmp_path):
    db = tmp_path / "prov.db"
    gate = tmp_path / "gate"
    gate.write_text("hold")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, str(CHILD), str(db), str(gate)],
        env=env,
        start_new_session=True,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        # Wait until at least two tuples have durably completed the
        # final stage, then kill coordinator + workers, no warning.
        _wait_for_completions(db, proc, want=2, timeout=60.0)
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10.0)
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10.0)
    gate.unlink()

    with ProvenanceStore(db) as store:
        wkfid = store.sql(
            "SELECT wkfid FROM hworkflow ORDER BY wkfid DESC LIMIT 1"
        )[0]["wkfid"]
        crashed = replay_journal(store, wkfid)  # validates seq monotonic
        assert not crashed.finished
        done_last = [k for (s, k) in crashed.completed if s == LAST_STAGE]
        assert len(done_last) >= 2
        # The gated tuple can't have finished before the kill.
        assert (LAST_STAGE, "slow-x") not in crashed.terminal

        engine = LocalEngine(store, workers=2, backend="threads")
        report = engine.resume(wkfid, child.build_workflow())

        assert sorted(t["key"] for t in report.output) == sorted(child.KEYS)
        assert report.replayed == len(crashed.completed)

        # Zero re-execution: nothing the crashed run durably completed
        # got an activation row in the resumed run.
        tags = [a.tag for a in child.build_workflow().activities]
        executed = {
            (r["tag"], r["tuple_key"])
            for r in store.sql(
                "SELECT a.tag, t.tuple_key FROM hactivation t"
                " JOIN hactivity a ON t.actid = a.actid WHERE a.wkfid = ?",
                (report.wkfid,),
            )
        }
        replayed_pairs = {(tags[s], k) for (s, k) in crashed.completed}
        assert executed.isdisjoint(replayed_pairs)
        # ...while the work the crash interrupted really re-ran.
        assert (tags[LAST_STAGE], "slow-x") in executed

        # Journal seq strictly monotonic in both the crashed run and
        # the resume (replay_journal raises otherwise — assert anyway).
        for run in (wkfid, report.wkfid):
            seqs = [r["seq"] for r in store.journal_events(run)]
            assert all(b > a for a, b in zip(seqs, seqs[1:]))
        assert replay_journal(store, report.wkfid).resumed_from == wkfid
