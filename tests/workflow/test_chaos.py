"""Chaos suite: injected crashes, hangs and failures against the REAL engine.

Every test here exercises enforcement, not simulation — worker processes
actually die (``os._exit``), activations actually hang, and the engine
must kill, heal, quarantine or back off for the run to complete. The
hang tests in particular would deadlock a pre-watchdog engine, which is
why CI runs this file under a hard timeout.
"""

from __future__ import annotations

import time

from repro.cloud.failures import ActivityFailureModel, LoopingStateModel
from repro.provenance.store import ActivationStatus, ProvenanceStore
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.engine import LocalEngine
from repro.workflow.fault import FaultInjector, RetryPolicy, Watchdog
from repro.workflow.relation import Relation

#: Chaos-friendly policy: near-zero backoff so worker respawns, not
#: sleeps, dominate each test's runtime.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01)


def identity(tup, context):
    return [dict(tup)]


def cooperative_hang(tup, context):
    # Hangs forever, but politely: the run-context token turns the
    # watchdog's cancel into ActivationCancelled.
    context["cancel_token"].sleep(3600.0)
    return [dict(tup)]


def stubborn_sleep(tup, context):
    # Ignores the cancellation token — the watchdog can only abandon it.
    time.sleep(1.5)
    return [dict(tup)]


def always_raises(tup, context):
    raise RuntimeError("persistent activation failure")


def relation_of(*keys: str) -> Relation:
    return Relation("in", [{"key": k, "x": i} for i, k in enumerate(keys)])


class TestProcessCrashRecovery:
    def test_crash_is_infra_failure_not_attempt(self):
        # A worker death must not consume the activation's attempt
        # budget: even max_attempts=1 completes after the crash, on the
        # healed worker, via the separate infrastructure budget.
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=2,
            backend="processes",
            retry=RetryPolicy(max_attempts=1, base_delay=0.01),
        )
        wf = Workflow("W", [Activity("work", Operator.MAP, fn=identity)])
        context = {
            "shared_maps": False,
            "fault_injector": FaultInjector(crash_keys=frozenset({"work:b"})),
        }
        report = engine.run(wf, relation_of("a", "b", "c"), context=context)
        assert sorted(t["key"] for t in report.output) == ["a", "b", "c"]
        assert report.infra_retries == 1
        assert report.retried == 0
        rows = [
            r
            for r in store.activations(report.wkfid)
            if r["tuple_key"] == "b"
        ]
        assert [r["status"] for r in rows] == ["FAILED", "FINISHED"]
        assert rows[0]["errormsg"].startswith("infrastructure failure:")
        # Attempt number unchanged across the infra redispatch.
        assert [r["attempt"] for r in rows] == [0, 0]

    def test_sustained_crashes_quarantine_a_slot(self):
        # Every dispatch of every try crashes its worker: the router
        # must give up on (quarantine) a chronically dying slot instead
        # of healing forever — but never the last one.
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=2,
            backend="processes",
            retry=RetryPolicy(
                max_attempts=1,
                base_delay=0.01,
                max_infra_retries=2,
                quarantine_after=2,
            ),
        )
        wf = Workflow("W", [Activity("work", Operator.MAP, fn=identity)])
        context = {
            "shared_maps": False,
            "fault_injector": FaultInjector(crash_rate=1.0),
        }
        report = engine.run(wf, relation_of("a", "b"), context=context)
        assert len(report.output) == 0
        assert not report.succeeded
        assert report.quarantined_workers == 1
        assert report.infra_retries > 0


class TestWatchdogProcesses:
    def test_hung_worker_killed_within_deadline_and_run_completes(self):
        # The acceptance case: an injected hang NOT matched by any
        # looping predicate. A pre-watchdog engine deadlocks here in
        # future.result(); the real watchdog must SIGKILL the worker at
        # the deadline, heal the pool, and finish the healthy tuples.
        store = ProvenanceStore()
        watchdog = Watchdog(timeout=2.0, multiplier=1.5, grace=0.2)
        engine = LocalEngine(
            store,
            workers=2,
            backend="processes",
            retry=FAST_RETRY,
            watchdog=watchdog,
        )
        wf = Workflow("W", [Activity("work", Operator.MAP, fn=identity)])
        context = {
            "shared_maps": False,
            "fault_injector": FaultInjector(
                looping_model=LoopingStateModel(
                    hg_loops=False, extra_looping_keys={"work:hang"}
                ),
            ),
        }
        t0 = time.perf_counter()
        report = engine.run(wf, relation_of("a", "hang", "b"), context=context)
        elapsed = time.perf_counter() - t0
        assert sorted(t["key"] for t in report.output) == ["a", "b"]
        assert report.timeouts == 1
        assert report.aborted == 1
        # The run ended shortly after the 2 s deadline, not after the
        # injector's 1-hour hang.
        assert elapsed < 15.0
        rows = store.activations(report.wkfid, ActivationStatus.ABORTED)
        assert len(rows) == 1
        assert rows[0]["tuple_key"] == "hang"
        assert rows[0]["errormsg"].startswith("watchdog timeout")
        assert "worker killed" in rows[0]["errormsg"]
        duration = rows[0]["endtime"] - rows[0]["starttime"]
        # Aborted at the deadline (plus kill/bookkeeping slack), and the
        # record carries the real abort clock, not start + deadline.
        assert 2.0 <= duration < 10.0

    def test_pool_replaced_after_watchdog_kill(self):
        # After the kill, the same engine run keeps executing on the
        # healed slot: submit more work for the *same affinity key* so
        # it must land where the hang was killed.
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=1,
            backend="processes",
            retry=FAST_RETRY,
            watchdog=Watchdog(timeout=1.5, multiplier=1.5, grace=0.2),
        )
        wf = Workflow(
            "W",
            [
                Activity("first", Operator.MAP, fn=identity),
                Activity("second", Operator.MAP, fn=identity),
            ],
        )
        context = {
            "shared_maps": False,
            "fault_injector": FaultInjector(
                looping_model=LoopingStateModel(
                    hg_loops=False, extra_looping_keys={"first:hang"}
                ),
            ),
        }
        report = engine.run(wf, relation_of("hang", "ok"), context=context)
        # The hung tuple died in activity "first"; the survivor made it
        # through both activities on the single (healed) worker.
        assert [t["key"] for t in report.output] == ["ok"]
        assert report.timeouts == 1


class TestWatchdogThreads:
    def test_cooperative_activation_cancelled(self):
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=2,
            backend="threads",
            retry=FAST_RETRY,
            watchdog=Watchdog(timeout=0.5, multiplier=1.5, grace=0.5),
        )
        wf = Workflow(
            "W",
            [
                Activity(
                    "coop", Operator.MAP, fn=cooperative_hang,
                    cost_fn=lambda t: 0.0,
                )
            ],
        )
        t0 = time.perf_counter()
        report = engine.run(wf, relation_of("a"))
        assert time.perf_counter() - t0 < 5.0
        assert report.timeouts == 1
        rows = store.activations(report.wkfid, ActivationStatus.ABORTED)
        assert "cancelled cooperatively" in rows[0]["errormsg"]

    def test_non_cooperative_activation_abandoned(self):
        # time.sleep ignores the token: the watchdog cannot kill a
        # thread, so after the grace window the activation is abandoned
        # and recorded ABORTED while its thread runs out on its own.
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=2,
            backend="threads",
            retry=FAST_RETRY,
            watchdog=Watchdog(timeout=0.3, multiplier=1.5, grace=0.1),
        )
        wf = Workflow(
            "W",
            [
                Activity(
                    "stub", Operator.MAP, fn=stubborn_sleep,
                    cost_fn=lambda t: 0.0,
                )
            ],
        )
        t0 = time.perf_counter()
        report = engine.run(wf, relation_of("a", "b"))
        # Both tuples abandoned well before their 1.5 s sleeps return.
        assert time.perf_counter() - t0 < 1.4
        assert report.timeouts == 2
        rows = store.activations(report.wkfid, ActivationStatus.ABORTED)
        assert all(
            "non-cooperative activation abandoned" in r["errormsg"] for r in rows
        )

    def test_injected_hang_on_threads_backend(self):
        # The injector's hang path uses the cooperative token, so a
        # thread-backend hang is cancelled, not abandoned.
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=2,
            backend="threads",
            retry=FAST_RETRY,
            watchdog=Watchdog(timeout=0.5, multiplier=1.5, grace=0.5),
        )
        wf = Workflow(
            "W",
            [
                Activity(
                    "work", Operator.MAP, fn=identity, cost_fn=lambda t: 0.0
                )
            ],
        )
        context = {
            "fault_injector": FaultInjector(
                looping_model=LoopingStateModel(
                    hg_loops=False, extra_looping_keys={"work:hang"}
                ),
            ),
        }
        report = engine.run(wf, relation_of("hang", "ok"), context=context)
        assert [t["key"] for t in report.output] == ["ok"]
        assert report.timeouts == 1


class TestRetryBackoff:
    def test_backoff_schedule_observed_in_attempt_timestamps(self):
        base, factor = 0.15, 2.0
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=1,
            backend="threads",
            retry=RetryPolicy(
                max_attempts=3, base_delay=base, backoff_factor=factor, jitter=0.0
            ),
        )
        wf = Workflow("W", [Activity("bad", Operator.MAP, fn=always_raises)])
        report = engine.run(wf, relation_of("a"))
        assert not report.succeeded
        assert report.retried == 2
        rows = sorted(
            store.activations(report.wkfid, ActivationStatus.FAILED),
            key=lambda r: r["attempt"],
        )
        assert [r["attempt"] for r in rows] == [0, 1, 2]
        gap1 = rows[1]["starttime"] - rows[0]["endtime"]
        gap2 = rows[2]["starttime"] - rows[1]["endtime"]
        # Gaps follow base * factor**n (lower-bounded; scheduling adds
        # slack upward but sleep never returns early).
        assert gap1 >= base * 0.95
        assert gap2 >= base * factor * 0.95
        assert gap2 > gap1

    def test_bernoulli_injection_recovers_via_retries(self):
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=2,
            backend="threads",
            retry=RetryPolicy(max_attempts=6, base_delay=0.01),
        )
        wf = Workflow("W", [Activity("work", Operator.MAP, fn=identity)])
        context = {
            "fault_injector": FaultInjector(
                failure_model=ActivityFailureModel(rate=0.5, seed=7),
            ),
        }
        keys = [f"k{i}" for i in range(8)]
        report = engine.run(wf, relation_of(*keys), context=context)
        # Retries re-roll the Bernoulli, so everything lands eventually.
        assert sorted(t["key"] for t in report.output) == sorted(keys)
        assert report.counts.get("FINISHED", 0) == len(keys)
        assert report.retried > 0
        failed = store.activations(report.wkfid, ActivationStatus.FAILED)
        assert all("injected failure" in r["errormsg"] for r in failed)


class TestPipelinedChaos:
    """Faults firing mid-pipeline: with per-activity barriers gone, a
    crash or hang in a downstream stage happens while upstream tuples
    are still flowing — the dispatcher must contain it without stalling
    the rest of the dataflow."""

    def test_crash_in_downstream_stage_mid_pipeline(self):
        # The crash fires in activity "second" for one tuple while its
        # siblings may still be inside "first"; the healed worker rejoins
        # the pipeline and every tuple finishes both stages.
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=2,
            backend="processes",
            retry=RetryPolicy(max_attempts=1, base_delay=0.01),
            pipeline=True,
        )
        wf = Workflow(
            "W",
            [
                Activity("first", Operator.MAP, fn=identity),
                Activity("second", Operator.MAP, fn=identity),
            ],
        )
        context = {
            "shared_maps": False,
            "fault_injector": FaultInjector(crash_keys=frozenset({"second:b"})),
        }
        report = engine.run(wf, relation_of("a", "b", "c"), context=context)
        assert sorted(t["key"] for t in report.output) == ["a", "b", "c"]
        assert report.infra_retries == 1
        rows = [
            r
            for r in store.activations(report.wkfid)
            if r["tuple_key"] == "b"
        ]
        # first FINISHED, second FAILED (infra) then FINISHED.
        assert [r["status"] for r in rows] == [
            "FINISHED", "FAILED", "FINISHED",
        ]

    def test_hang_in_downstream_stage_does_not_stall_pipeline(self):
        # One tuple hangs in stage two; the watchdog aborts it there
        # while the other tuples stream through both stages.
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=2,
            backend="threads",
            retry=FAST_RETRY,
            watchdog=Watchdog(timeout=0.5, multiplier=1.5, grace=0.5),
            pipeline=True,
        )
        wf = Workflow(
            "W",
            [
                Activity(
                    "first", Operator.MAP, fn=identity, cost_fn=lambda t: 0.0
                ),
                Activity(
                    "second", Operator.MAP, fn=identity, cost_fn=lambda t: 0.0
                ),
            ],
        )
        context = {
            "fault_injector": FaultInjector(
                looping_model=LoopingStateModel(
                    hg_loops=False, extra_looping_keys={"second:hang"}
                ),
            ),
        }
        report = engine.run(wf, relation_of("a", "hang", "b"), context=context)
        assert sorted(t["key"] for t in report.output) == ["a", "b"]
        assert report.timeouts == 1
        rows = store.activations(report.wkfid, ActivationStatus.ABORTED)
        assert len(rows) == 1
        assert rows[0]["tuple_key"] == "hang"

    def test_barrier_mode_contains_the_same_faults(self):
        # The historical barrier dispatcher must handle the identical
        # fault plan — parity of fault containment, not just results.
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=2,
            backend="threads",
            retry=FAST_RETRY,
            watchdog=Watchdog(timeout=0.5, multiplier=1.5, grace=0.5),
            pipeline=False,
        )
        wf = Workflow(
            "W",
            [
                Activity(
                    "first", Operator.MAP, fn=identity, cost_fn=lambda t: 0.0
                ),
                Activity(
                    "second", Operator.MAP, fn=identity, cost_fn=lambda t: 0.0
                ),
            ],
        )
        context = {
            "fault_injector": FaultInjector(
                looping_model=LoopingStateModel(
                    hg_loops=False, extra_looping_keys={"second:hang"}
                ),
            ),
        }
        report = engine.run(wf, relation_of("a", "hang", "b"), context=context)
        assert sorted(t["key"] for t in report.output) == ["a", "b"]
        assert report.timeouts == 1


class TestFaultInjectorDeterminism:
    def test_same_seed_same_fates(self):
        inj = FaultInjector(
            failure_model=ActivityFailureModel(rate=0.3, seed=3), seed=3
        )
        fates = [inj.plan(f"work:k{i}", 0) for i in range(32)]
        again = [inj.plan(f"work:k{i}", 0) for i in range(32)]
        assert fates == again
        assert "fail" in fates and "ok" in fates

    def test_crash_keys_fire_on_first_try_only(self):
        inj = FaultInjector(crash_keys=frozenset({"work:a"}))
        assert inj.plan("work:a", 0) == "crash"
        assert inj.plan("work:a", 1) == "ok"
        assert inj.plan("work:b", 0) == "ok"
