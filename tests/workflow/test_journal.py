"""Unit tests for the event-sourced run journal and journal-based resume."""

import threading

import pytest

from repro.provenance.store import ProvenanceStore
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.engine import LocalEngine
from repro.workflow.fault import RetryPolicy
from repro.workflow.journal import (
    JournalError,
    JournalEventType,
    RunJournal,
    has_journal,
    journal_safe_context,
    recover_context,
    replay_journal,
)
from repro.workflow.relation import Relation


def identity(t, c):
    return [dict(t)]


def two_stage(fail_keys=(), fail_once_keys=()):
    """A 2-activity workflow whose second stage fails for chosen keys."""
    attempts: dict[str, int] = {}

    def stage2(t, c):
        k = t["key"]
        attempts[k] = attempts.get(k, 0) + 1
        if k in fail_keys:
            raise RuntimeError("permanent")
        if k in fail_once_keys and attempts[k] == 1:
            raise RuntimeError("transient")
        return [{"key": k, "out": k.upper()}]

    return Workflow(
        "W",
        [
            Activity("stage1", Operator.MAP, fn=identity),
            Activity("stage2", Operator.MAP, fn=stage2),
        ],
    )


def rel(*keys):
    return Relation("in", [{"key": k} for k in keys])


def assert_strictly_monotonic(seqs):
    assert seqs, "journal is empty"
    assert all(b > a for a, b in zip(seqs, seqs[1:])), seqs


FAST = RetryPolicy(max_attempts=1, base_delay=0.01)


class TestRunJournalWriter:
    def test_seq_strictly_monotonic(self):
        store = ProvenanceStore()
        wkfid = store.begin_workflow("W", starttime=0.0)
        j = RunJournal(store, wkfid)
        j.run_started("W", pipeline=True, context=None, relation_size=2)
        j.scheduled(0, "a", {"key": "a"}, None)
        j.dispatched(0, "a")
        j.attempt_started("a", "stage1", 0)
        j.completed(0, "a", [{"key": "a"}])
        j.run_finished()
        rows = store.journal_events(wkfid)
        assert [r["seq"] for r in rows] == list(range(6))
        assert [r["event"] for r in rows] == [
            "run-started", "scheduled", "dispatched", "attempt-start",
            "completed", "run-finished",
        ]

    def test_terminal_event_is_a_flush_barrier(self):
        # Non-terminal events ride the write buffer; a completed event
        # must drain it synchronously — the crash-durability guarantee.
        s = ProvenanceStore(buffer_size=1000, flush_interval=3600.0)
        wkfid = s.begin_workflow("W", starttime=0.0)
        j = RunJournal(s, wkfid)
        j.scheduled(0, "a", {"key": "a"}, None)
        j.dispatched(0, "a")
        assert s._pending_count > 0
        j.completed(0, "a", [{"key": "a"}])
        assert s._pending_count == 0
        s.close()

    def test_unpicklable_payload_degrades_to_reexecution(self):
        # A completed event whose outputs can't pickle is still terminal
        # but not replayable: resume re-runs it instead of crashing.
        store = ProvenanceStore()
        wkfid = store.begin_workflow("W", starttime=0.0)
        j = RunJournal(store, wkfid)
        j.completed(0, "a", [{"key": "a", "lock": threading.Lock()}])
        replay = replay_journal(store, wkfid)
        assert (0, "a") in replay.terminal
        assert replay.outputs_for(0, "a") is None

    def test_journal_safe_context_filters(self):
        ctx = {
            "kernel": "tables",
            "etable_points": 512,
            "steering": "live-object-by-convention",   # unjournaled key
            "wkfid": 7,                                # unjournaled key
            "lock": threading.Lock(),                  # unpicklable value
        }
        assert journal_safe_context(ctx) == {
            "kernel": "tables", "etable_points": 512,
        }
        assert journal_safe_context(None) == {}


class TestEngineJournaling:
    def test_run_writes_full_taxonomy(self):
        store = ProvenanceStore()
        engine = LocalEngine(store, workers=2)
        report = engine.run(two_stage(), rel("a", "b", "c"))
        rows = store.journal_events(report.wkfid)
        names = [r["event"] for r in rows]
        assert names[0] == "run-started"
        assert names[-1] == "run-finished"
        # 3 tuples x 2 stages, one event of each kind per item.
        for kind in ("scheduled", "dispatched", "attempt-start", "completed"):
            assert names.count(kind) == 6, kind
        assert_strictly_monotonic([r["seq"] for r in rows])

    def test_failed_item_journals_failed_terminal(self):
        store = ProvenanceStore()
        engine = LocalEngine(store, workers=1, retry=FAST)
        report = engine.run(two_stage(fail_keys=("b",)), rel("a", "b"))
        rows = store.journal_events(report.wkfid)
        failed = [r for r in rows if r["event"] == "failed"]
        assert [(r["stage"], r["tuple_key"]) for r in failed] == [(1, "b")]
        # The failure never produced a completed event for that item.
        completed = {
            (r["stage"], r["tuple_key"])
            for r in rows
            if r["event"] == "completed"
        }
        assert (1, "b") not in completed

    def test_has_journal_and_recover_context(self):
        store = ProvenanceStore()
        engine = LocalEngine(store, workers=1)
        report = engine.run(
            two_stage(), rel("a"), context={"kernel": "tables"}
        )
        assert has_journal(store, report.wkfid)
        ctx = recover_context(store, report.wkfid)
        assert ctx["kernel"] == "tables"
        # Coordinator-owned keys the engine injects never round-trip.
        assert "wkfid" not in ctx
        # Pre-journal (or foreign) runs have nothing to recover.
        bare = store.begin_workflow("OLD", starttime=0.0)
        assert not has_journal(store, bare)
        assert recover_context(store, bare) is None


class TestReplay:
    def test_replay_unjournaled_run_raises(self):
        store = ProvenanceStore()
        bare = store.begin_workflow("OLD", starttime=0.0)
        with pytest.raises(JournalError):
            replay_journal(store, bare)

    def test_replay_folds_a_clean_run(self):
        store = ProvenanceStore()
        engine = LocalEngine(store, workers=1)
        report = engine.run(two_stage(), rel("a", "b", "c"))
        replay = replay_journal(store, report.wkfid)
        assert replay.workflow_tag == "W"
        assert replay.pipeline is True
        assert replay.finished
        assert replay.resumed_from is None
        assert len(replay.completed) == 6
        assert replay.frontier() == []
        assert replay.outputs_for(1, "a") == [{"key": "a", "out": "A"}]
        seeded = replay.seed_relation()
        assert [t["key"] for t in seeded] == ["a", "b", "c"]

    def test_non_monotonic_seq_rejected(self):
        store = ProvenanceStore()
        wkfid = store.begin_workflow("W", starttime=0.0)
        store.record_journal_event(wkfid, 0, "run-started")
        store.record_journal_event(wkfid, 0, "completed", 0, "a")
        with pytest.raises(JournalError, match="monotonic"):
            replay_journal(store, wkfid)

    def test_seed_relation_requires_replayable_seeds(self):
        store = ProvenanceStore()
        wkfid = store.begin_workflow("W", starttime=0.0)
        j = RunJournal(store, wkfid)
        j.run_started("W", pipeline=True, context=None, relation_size=1)
        j.scheduled(0, "a", {"key": "a", "lock": threading.Lock()}, None)
        replay = replay_journal(store, wkfid)
        with pytest.raises(JournalError, match="pass the relation"):
            replay.seed_relation()


class TestResume:
    def test_resume_replays_finished_items_without_reexecution(self):
        store = ProvenanceStore()
        engine = LocalEngine(store, workers=1, retry=FAST)
        r1 = engine.run(two_stage(fail_keys=("b",)), rel("a", "b", "c"))
        assert sorted(t["key"] for t in r1.output) == ["a", "c"]

        r2 = engine.resume(r1.wkfid, two_stage())
        # stage1 of a/b/c and stage2 of a/c replay; only stage2 of b runs.
        assert r2.replayed == 5
        assert sorted(t["key"] for t in r2.output) == ["a", "b", "c"]
        executed = store.activations(r2.wkfid)
        assert [(r["tuple_key"]) for r in executed] == ["b"]
        # The resumed run's journal is self-contained: every item — the
        # 5 replayed and the 1 re-run — re-journals a completed event.
        rows = store.journal_events(r2.wkfid)
        names = [r["event"] for r in rows]
        assert names.count("replayed") == 5
        assert names.count("completed") == 6
        assert_strictly_monotonic([r["seq"] for r in rows])
        assert replay_journal(store, r2.wkfid).resumed_from == r1.wkfid

    def test_resume_runs_under_journaled_context(self):
        store = ProvenanceStore()
        calls: dict[str, int] = {}

        def work(t, c):
            k = t["key"]
            calls[k] = calls.get(k, 0) + 1
            if k == "b" and calls[k] == 1:
                raise RuntimeError("boom")
            return [{"key": k, "mode": c.get("kernel", "MISSING")}]

        wf = Workflow("W", [Activity("work", Operator.MAP, fn=work)])
        engine = LocalEngine(store, workers=1, retry=FAST)
        r1 = engine.run(wf, rel("a", "b"), context={"kernel": "tables"})
        assert [t["key"] for t in r1.output] == ["a"]
        r2 = engine.resume(r1.wkfid, wf)
        assert r2.replayed == 1
        modes = {t["key"]: t["mode"] for t in r2.output}
        # The re-executed tuple saw the recovered context, and the
        # replayed tuple's logged output carries the original's.
        assert modes == {"a": "tables", "b": "tables"}

    def test_resume_chains_through_repeated_crashes(self):
        # A resumed run that fails again is itself resumable, because
        # replayed completions are re-journaled into the new run.
        store = ProvenanceStore()
        engine = LocalEngine(store, workers=1, retry=FAST)
        r1 = engine.run(two_stage(fail_keys=("b",)), rel("a", "b", "c"))
        r2 = engine.resume(r1.wkfid, two_stage(fail_keys=("b",)))
        assert sorted(t["key"] for t in r2.output) == ["a", "b", "c"][::2]
        r3 = engine.resume(r2.wkfid, two_stage())
        assert r3.replayed == 5
        assert sorted(t["key"] for t in r3.output) == ["a", "b", "c"]
        assert replay_journal(store, r3.wkfid).resumed_from == r2.wkfid

    def test_resume_explicit_relation_and_context_override(self):
        store = ProvenanceStore()
        engine = LocalEngine(store, workers=1, retry=FAST)
        r1 = engine.run(
            two_stage(fail_keys=("b",)), rel("a", "b"),
            context={"kernel": "tables"},
        )
        r2 = engine.resume(
            r1.wkfid, two_stage(), relation=rel("a", "b"),
            context={"kernel": "analytic"},
        )
        assert sorted(t["key"] for t in r2.output) == ["a", "b"]
        # The override wins over the journaled value in the new header.
        assert recover_context(store, r2.wkfid)["kernel"] == "analytic"


class TestSimulatedEngineJournal:
    def test_sim_run_journals_events(self):
        from repro.cloud.cluster import VirtualCluster
        from repro.cloud.provider import CloudProvider
        from repro.cloud.simclock import SimClock
        from repro.workflow.engine import SimulatedEngine

        store = ProvenanceStore()
        cluster = VirtualCluster(CloudProvider(SimClock()))
        cluster.scale_to(2)
        wf = Workflow("W", [Activity("s", Operator.MAP, cost_fn=lambda t: 3.0)])
        report = SimulatedEngine(store, cluster).run(wf, rel("a", "b", "c"))
        rows = store.journal_events(report.wkfid)
        names = [r["event"] for r in rows]
        assert names[0] == "run-started"
        assert names[-1] == "run-finished"
        assert names.count("completed") == 3
        assert_strictly_monotonic([r["seq"] for r in rows])
