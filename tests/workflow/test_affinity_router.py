"""Affinity router: sticky placement, stealing, healing, shutdown."""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.workflow.affinity import (
    AffinityRouter,
    RouterError,
    probe_worker,
    sleepy_probe,
    stable_hash,
)


@pytest.fixture(scope="module")
def spawn_ctx():
    return multiprocessing.get_context("spawn")


def test_stable_hash_is_process_independent():
    # sha256-derived, so these values hold in every interpreter.
    assert stable_hash("2HHN") == stable_hash("2HHN")
    assert stable_hash("2HHN") != stable_hash("1S4V")


def test_same_key_lands_on_same_process(spawn_ctx):
    router = AffinityRouter(2, spawn_ctx)
    try:
        pids = [router.submit("2HHN", probe_worker).result() for _ in range(4)]
        assert len(set(pids)) == 1
        assert router.steals == 0
    finally:
        router.shutdown()


def test_distinct_keys_spread_by_hash(spawn_ctx):
    workers = 3
    router = AffinityRouter(workers, spawn_ctx)
    try:
        keys = [f"REC{i}" for i in range(9)]
        pid_by_key = {k: router.submit(k, probe_worker).result() for k in keys}
        home = {k: stable_hash(k) % workers for k in keys}
        # Keys with equal home hash must share a pid (when never stolen;
        # sequential submission keeps every queue drained, so no steals).
        for a in keys:
            for b in keys:
                if home[a] == home[b]:
                    assert pid_by_key[a] == pid_by_key[b]
        assert len(set(pid_by_key.values())) == len(set(home.values()))
    finally:
        router.shutdown()


def test_idle_worker_steals_backlog(spawn_ctx):
    router = AffinityRouter(2, spawn_ctx)
    try:
        # Warm both pools so steal timing is not dominated by spawn cost.
        router.submit(None, probe_worker).result()
        home = "REC-A"
        # Queue several slow tasks for one home worker; the other worker
        # has nothing and must steal part of the backlog.
        futures = [
            router.submit(home, sleepy_probe, 0.3) for _ in range(6)
        ]
        pids = {f.result() for f in futures}
        assert router.steals > 0
        assert len(pids) == 2
    finally:
        router.shutdown()


def test_exception_propagates_not_fatal(spawn_ctx):
    router = AffinityRouter(1, spawn_ctx)
    try:
        with pytest.raises(ZeroDivisionError):
            router.submit("k", divmod, 1, 0).result()
        # The worker survives a plain exception.
        assert isinstance(router.submit("k", probe_worker).result(), int)
    finally:
        router.shutdown()


def test_broken_worker_heals(spawn_ctx):
    router = AffinityRouter(1, spawn_ctx)
    try:
        before = router.submit("k", probe_worker).result()
        with pytest.raises(Exception) as err:
            router.submit("k", os._exit, 17).result()
        assert "process" in str(err.value).lower() or "abruptly" in str(err.value).lower()
        # The dead pool was replaced: the next task runs in a fresh process.
        after = router.submit("k", probe_worker).result()
        assert isinstance(after, int)
        assert after != before
    finally:
        router.shutdown()


def test_broadcast_runs_on_every_worker(spawn_ctx):
    router = AffinityRouter(3, spawn_ctx)
    try:
        pids = router.broadcast(probe_worker)
        assert len(pids) == 3
        assert all(isinstance(p, int) for p in pids)
        assert len(set(pids)) == 3
    finally:
        router.shutdown()


def test_shutdown_rejects_new_work(spawn_ctx):
    router = AffinityRouter(1, spawn_ctx)
    router.shutdown()
    with pytest.raises(RouterError):
        router.submit("k", probe_worker)
    with pytest.raises(RouterError):
        router.broadcast(probe_worker)
    router.shutdown()  # idempotent


def test_resize_grow_adds_live_slots(spawn_ctx):
    router = AffinityRouter(1, spawn_ctx)
    try:
        assert router.resize(3) == 3
        assert router.workers == 3
        pids = router.broadcast(probe_worker)
        assert len(pids) == 3
        assert len(set(pids)) == 3
    finally:
        router.shutdown()


def test_resize_shrink_retires_slots(spawn_ctx):
    router = AffinityRouter(3, spawn_ctx)
    try:
        assert router.resize(1) == 1
        # All work now lands on the single surviving slot.
        pids = {
            router.submit(f"K{i}", probe_worker).result() for i in range(6)
        }
        assert len(pids) == 1
        assert len(router.broadcast(probe_worker)) == 1
    finally:
        router.shutdown()


def test_resize_never_drops_below_one(spawn_ctx):
    router = AffinityRouter(2, spawn_ctx)
    try:
        assert router.resize(0) == 1
        assert isinstance(router.submit("k", probe_worker).result(), int)
    finally:
        router.shutdown()


def test_resize_shrink_redistributes_backlog(spawn_ctx):
    router = AffinityRouter(2, spawn_ctx)
    try:
        # Queue slow work everywhere, then shrink mid-flight: every
        # already-submitted future must still complete.
        futures = [
            router.submit(f"K{i}", sleepy_probe, 0.2) for i in range(6)
        ]
        router.resize(1)
        results = [f.result(timeout=30) for f in futures]
        assert all(isinstance(pid, int) for pid in results)
    finally:
        router.shutdown()


def test_resize_after_shutdown_raises(spawn_ctx):
    router = AffinityRouter(1, spawn_ctx)
    router.shutdown()
    with pytest.raises(RouterError):
        router.resize(2)
