"""Unit tests for the MPJ-style master/worker messaging layer."""

import pytest

from repro.cloud.simclock import SimClock
from repro.workflow.messaging import (
    Channel,
    MasterWorkerProtocol,
    Message,
    MessageTag,
    MessagingError,
)


class TestChannel:
    def test_latency_model(self):
        clock = SimClock()
        ch = Channel(clock, base_latency=0.01, bandwidth=1000)
        small = Message(MessageTag.TASK, 0, 1, "x")
        big = Message(MessageTag.TASK, 0, 1, "x" * 10_000)
        assert ch.latency_of(big) > ch.latency_of(small) > 0.01

    def test_validation(self):
        with pytest.raises(MessagingError):
            Channel(SimClock(), base_latency=-1)
        with pytest.raises(MessagingError):
            Channel(SimClock(), bandwidth=0)

    def test_delivery_happens_after_latency(self):
        clock = SimClock()
        ch = Channel(clock, base_latency=0.5)
        got = []
        ch.send(Message(MessageTag.TASK, 0, 1, "p"), got.append)
        assert got == []
        clock.run()
        assert len(got) == 1
        assert clock.now >= 0.5

    def test_accounting(self):
        clock = SimClock()
        ch = Channel(clock)
        ch.send(Message(MessageTag.TASK, 0, 1, "abc"), lambda m: None)
        assert ch.message_count == 1
        assert ch.delivered_bytes > 0


class TestMasterWorker:
    def test_requires_workers(self):
        with pytest.raises(MessagingError):
            MasterWorkerProtocol(0)

    def test_all_tasks_complete(self):
        proto = MasterWorkerProtocol(n_workers=3)
        makespan = proto.run(
            tasks=list(range(10)),
            service_fn=lambda t: 1.0,
            result_fn=lambda t: t * 2,
        )
        assert makespan > 0
        assert len(proto.results) == 10
        assert sorted(v for _, v in proto.results) == [t * 2 for t in range(10)]

    def test_work_spread_across_workers(self):
        proto = MasterWorkerProtocol(n_workers=4)
        proto.run(tasks=list(range(20)), service_fn=lambda t: 1.0)
        busy = [s.tasks_done for s in proto.stats.values()]
        assert sum(busy) == 20
        assert max(busy) <= 8  # roughly balanced

    def test_more_workers_shorter_makespan(self):
        def run(n):
            proto = MasterWorkerProtocol(n_workers=n)
            return proto.run(tasks=list(range(24)), service_fn=lambda t: 2.0)

        assert run(8) < run(2)

    def test_longest_task_first(self):
        """Greedy handout: the big task goes out in the first wave."""
        proto = MasterWorkerProtocol(n_workers=1)
        order = []
        proto.run(
            tasks=[1, 100, 10],
            service_fn=lambda t: float(t),
            result_fn=lambda t: order.append(t),
        )
        assert order[0] == 100

    def test_failure_retry(self):
        attempts = {}

        def fail_fn(task, attempt):
            attempts[task] = attempts.get(task, 0) + 1
            return attempt == 0  # first try fails, retry succeeds

        proto = MasterWorkerProtocol(n_workers=2, max_retries=3)
        proto.run(tasks=["a", "b"], service_fn=lambda t: 1.0, fail_fn=fail_fn)
        assert len(proto.results) == 2
        assert proto.dropped == []
        assert sum(s.tasks_failed for s in proto.stats.values()) == 2

    def test_retries_exhausted_drops_task(self):
        proto = MasterWorkerProtocol(n_workers=1, max_retries=2)
        proto.run(
            tasks=["doomed"],
            service_fn=lambda t: 1.0,
            fail_fn=lambda t, a: True,
        )
        assert proto.results == []
        assert proto.dropped == ["doomed"]

    def test_communication_overhead_grows_with_messages(self):
        proto_few = MasterWorkerProtocol(n_workers=2)
        proto_few.run(tasks=list(range(4)), service_fn=lambda t: 1.0)
        proto_many = MasterWorkerProtocol(n_workers=2)
        proto_many.run(tasks=list(range(40)), service_fn=lambda t: 1.0)
        assert proto_many.communication_seconds > proto_few.communication_seconds

    def test_makespan_includes_latency(self):
        clock = SimClock()
        slow = Channel(clock, base_latency=5.0)
        proto = MasterWorkerProtocol(n_workers=1, clock=clock, channel=slow)
        makespan = proto.run(tasks=["t"], service_fn=lambda t: 1.0)
        # request + task + result latencies dominate the 1 s service.
        assert makespan > 10.0

    def test_deterministic(self):
        def run():
            proto = MasterWorkerProtocol(n_workers=3)
            return proto.run(tasks=list(range(12)), service_fn=lambda t: float(t % 4))

        assert run() == run()


class _BigRepr:
    """Huge repr, tiny pickle (by-reference class + empty state)."""

    def __repr__(self):
        return "x" * 1_000_000


class TestPickleSizedLatency:
    def test_latency_charges_pickle_size_not_repr_size(self):
        """A payload with a huge repr but tiny pickle must be charged
        its wire size: frames carry pickles, not reprs."""
        import pickle

        BigRepr = _BigRepr
        ch = Channel(SimClock(), base_latency=0.0, bandwidth=1.0)
        msg = Message(MessageTag.TASK, 0, 1, BigRepr())
        wire = len(pickle.dumps(msg.payload, protocol=pickle.HIGHEST_PROTOCOL))
        assert ch.size_of(msg) == wire
        assert ch.latency_of(msg) == pytest.approx(wire)
        assert ch.size_of(msg) < 10_000  # nowhere near the repr size

    def test_unpicklable_payload_falls_back_to_repr(self):
        ch = Channel(SimClock())
        msg = Message(MessageTag.TASK, 0, 1, lambda: None)
        assert ch.size_of(msg) > 0

    def test_worker_stats_count_wire_bytes(self):
        proto = MasterWorkerProtocol(n_workers=2)
        proto.run(tasks=["a" * 100, "b" * 200], service_fn=lambda t: 1.0)
        received = sum(s.bytes_received for s in proto.stats.values())
        sent = sum(s.bytes_sent for s in proto.stats.values())
        assert received > 0 and sent > 0


class TestFrameConn:
    def test_roundtrip_over_socketpair(self):
        import socket

        from repro.workflow.messaging import FrameConn

        a, b = socket.socketpair()
        left, right = FrameConn(a), FrameConn(b)
        try:
            left.send(MessageTag.TASK, {"task_id": 7, "args": [1, 2]}, dst=3)
            got = right.recv()
            assert got is not None
            assert got.tag is MessageTag.TASK
            assert got.dst == 3
            assert got.payload == {"task_id": 7, "args": [1, 2]}
            # Byte counters agree across the pair and include headers.
            assert left.bytes_sent == right.bytes_received > 0
            assert left.frames_sent == right.frames_received == 1
        finally:
            left.close()
            right.close()

    def test_recv_returns_none_on_clean_close(self):
        import socket

        from repro.workflow.messaging import FrameConn

        a, b = socket.socketpair()
        left, right = FrameConn(a), FrameConn(b)
        left.close()
        try:
            assert right.recv() is None
        finally:
            right.close()

    def test_mid_frame_close_raises(self):
        import socket

        from repro.workflow.messaging import FRAME_HEADER, FrameConn

        a, b = socket.socketpair()
        right = FrameConn(b)
        try:
            # Announce a 100-byte body, send only 3 bytes, then vanish.
            a.sendall(FRAME_HEADER.pack(100, 0) + b"abc")
            a.close()
            with pytest.raises(MessagingError):
                right.recv()
        finally:
            right.close()


class TestFrameHardening:
    """A corrupt or hostile peer must raise, never allocate blindly."""

    def _pair(self):
        import socket

        from repro.workflow.messaging import FrameConn

        a, b = socket.socketpair()
        return a, FrameConn(b)

    def test_truncated_header_raises(self):
        a, right = self._pair()
        try:
            a.sendall(b"\x00\x00")  # 2 of the 5 header bytes
            a.close()
            with pytest.raises(MessagingError, match="mid-frame"):
                right.recv()
        finally:
            right.close()

    def test_truncated_body_raises(self):
        from repro.workflow.messaging import FRAME_HEADER

        a, right = self._pair()
        try:
            a.sendall(FRAME_HEADER.pack(64, 0) + b"short")
            a.close()
            with pytest.raises(MessagingError):
                right.recv()
        finally:
            right.close()

    def test_over_limit_frame_rejected_before_allocation(self):
        """A corrupt length header larger than the cap raises cleanly —
        recv_frame must never try the multi-GB allocation."""
        from repro.workflow.messaging import FRAME_HEADER, recv_frame

        a, right = self._pair()
        right.max_frame_bytes = 1024
        try:
            a.sendall(FRAME_HEADER.pack(1 << 31, 0))
            with pytest.raises(MessagingError, match="oversized"):
                right.recv()
        finally:
            a.close()
            right.close()

    def test_recv_frame_honors_custom_limit(self):
        import socket

        from repro.workflow.messaging import recv_frame, send_frame

        a, b = socket.socketpair()
        try:
            msg = Message(MessageTag.TASK, 0, 1, "x" * 4096)
            send_frame(a, msg)
            with pytest.raises(MessagingError, match="oversized"):
                recv_frame(b, max_frame_bytes=256)
        finally:
            a.close()
            b.close()

    def test_garbage_body_raises_protocol_error(self):
        from repro.workflow.messaging import FRAME_HEADER

        a, right = self._pair()
        try:
            body = b"\xde\xad\xbe\xef" * 8
            a.sendall(FRAME_HEADER.pack(len(body), 0) + body)
            with pytest.raises(MessagingError, match="corrupt"):
                right.recv()
        finally:
            a.close()
            right.close()

    def test_corrupt_zlib_body_raises_protocol_error(self):
        from repro.workflow.messaging import FLAG_ZLIB, FRAME_HEADER

        a, right = self._pair()
        try:
            body = b"this is not a zlib stream"
            a.sendall(FRAME_HEADER.pack(len(body), FLAG_ZLIB) + body)
            with pytest.raises(MessagingError, match="compressed"):
                right.recv()
        finally:
            a.close()
            right.close()

    def test_non_message_pickle_rejected(self):
        import pickle

        from repro.workflow.messaging import FRAME_HEADER

        a, right = self._pair()
        try:
            body = pickle.dumps({"not": "a Message"})
            a.sendall(FRAME_HEADER.pack(len(body), 0) + body)
            with pytest.raises(MessagingError, match="expected a Message"):
                right.recv()
        finally:
            a.close()
            right.close()


class TestFrameCompression:
    def _pair(self):
        import socket

        from repro.workflow.messaging import FrameConn

        a, b = socket.socketpair()
        return FrameConn(a), FrameConn(b)

    def test_compressed_roundtrip_and_counters(self):
        left, right = self._pair()
        try:
            left.enable_compression(min_bytes=64)
            payload = {"blob": b"A" * 50_000}
            left.send(MessageTag.ARTIFACT_DATA, payload)
            got = right.recv()
            assert got is not None
            assert got.payload == payload
            # On-wire accounting is the compressed size on both ends...
            assert left.bytes_sent == right.bytes_received
            assert left.bytes_sent < 5_000
            # ...and both ends agree on what compression saved.
            assert left.bytes_saved_sent == right.bytes_saved_received > 40_000
            assert left.frames_compressed_sent == 1
            assert right.frames_compressed_received == 1
        finally:
            left.close()
            right.close()

    def test_receiver_inflates_without_negotiation(self):
        """The flags byte is authoritative: a receiver that never opted
        in still inflates a compressed frame correctly."""
        left, right = self._pair()
        try:
            left.enable_compression(min_bytes=0)
            left.send(MessageTag.RESULT, {"value": "v" * 10_000})
            got = right.recv()
            assert got is not None
            assert got.payload == {"value": "v" * 10_000}
        finally:
            left.close()
            right.close()

    def test_small_frames_skip_compression(self):
        left, right = self._pair()
        try:
            left.enable_compression()  # default 512-byte threshold
            left.send(MessageTag.WORK_REQUEST, {"n": 1})
            got = right.recv()
            assert got is not None
            assert left.frames_compressed_sent == 0
            assert left.bytes_saved_sent == 0
            assert right.bytes_saved_received == 0
        finally:
            left.close()
            right.close()

    def test_incompressible_body_ships_raw(self):
        import os

        left, right = self._pair()
        try:
            left.enable_compression(min_bytes=64)
            left.send(MessageTag.ARTIFACT_DATA, {"blob": os.urandom(8192)})
            got = right.recv()
            assert got is not None
            # Random bytes don't deflate: the frame went out unflagged.
            assert left.frames_compressed_sent == 0
            assert left.bytes_sent == right.bytes_received
        finally:
            left.close()
            right.close()

    def test_channel_compression_accounting(self):
        clock = SimClock()
        plain = Channel(clock)
        packed = Channel(clock, compress_min_bytes=64)
        msg = Message(MessageTag.TASK, 0, 1, "z" * 20_000)
        assert packed.size_of(msg) < plain.size_of(msg)
        assert packed.latency_of(msg) < plain.latency_of(msg)
        packed.send(msg, lambda m: None)
        assert packed.bytes_saved > 0
