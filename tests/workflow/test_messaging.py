"""Unit tests for the MPJ-style master/worker messaging layer."""

import pytest

from repro.cloud.simclock import SimClock
from repro.workflow.messaging import (
    Channel,
    MasterWorkerProtocol,
    Message,
    MessageTag,
    MessagingError,
)


class TestChannel:
    def test_latency_model(self):
        clock = SimClock()
        ch = Channel(clock, base_latency=0.01, bandwidth=1000)
        small = Message(MessageTag.TASK, 0, 1, "x")
        big = Message(MessageTag.TASK, 0, 1, "x" * 10_000)
        assert ch.latency_of(big) > ch.latency_of(small) > 0.01

    def test_validation(self):
        with pytest.raises(MessagingError):
            Channel(SimClock(), base_latency=-1)
        with pytest.raises(MessagingError):
            Channel(SimClock(), bandwidth=0)

    def test_delivery_happens_after_latency(self):
        clock = SimClock()
        ch = Channel(clock, base_latency=0.5)
        got = []
        ch.send(Message(MessageTag.TASK, 0, 1, "p"), got.append)
        assert got == []
        clock.run()
        assert len(got) == 1
        assert clock.now >= 0.5

    def test_accounting(self):
        clock = SimClock()
        ch = Channel(clock)
        ch.send(Message(MessageTag.TASK, 0, 1, "abc"), lambda m: None)
        assert ch.message_count == 1
        assert ch.delivered_bytes > 0


class TestMasterWorker:
    def test_requires_workers(self):
        with pytest.raises(MessagingError):
            MasterWorkerProtocol(0)

    def test_all_tasks_complete(self):
        proto = MasterWorkerProtocol(n_workers=3)
        makespan = proto.run(
            tasks=list(range(10)),
            service_fn=lambda t: 1.0,
            result_fn=lambda t: t * 2,
        )
        assert makespan > 0
        assert len(proto.results) == 10
        assert sorted(v for _, v in proto.results) == [t * 2 for t in range(10)]

    def test_work_spread_across_workers(self):
        proto = MasterWorkerProtocol(n_workers=4)
        proto.run(tasks=list(range(20)), service_fn=lambda t: 1.0)
        busy = [s.tasks_done for s in proto.stats.values()]
        assert sum(busy) == 20
        assert max(busy) <= 8  # roughly balanced

    def test_more_workers_shorter_makespan(self):
        def run(n):
            proto = MasterWorkerProtocol(n_workers=n)
            return proto.run(tasks=list(range(24)), service_fn=lambda t: 2.0)

        assert run(8) < run(2)

    def test_longest_task_first(self):
        """Greedy handout: the big task goes out in the first wave."""
        proto = MasterWorkerProtocol(n_workers=1)
        order = []
        proto.run(
            tasks=[1, 100, 10],
            service_fn=lambda t: float(t),
            result_fn=lambda t: order.append(t),
        )
        assert order[0] == 100

    def test_failure_retry(self):
        attempts = {}

        def fail_fn(task, attempt):
            attempts[task] = attempts.get(task, 0) + 1
            return attempt == 0  # first try fails, retry succeeds

        proto = MasterWorkerProtocol(n_workers=2, max_retries=3)
        proto.run(tasks=["a", "b"], service_fn=lambda t: 1.0, fail_fn=fail_fn)
        assert len(proto.results) == 2
        assert proto.dropped == []
        assert sum(s.tasks_failed for s in proto.stats.values()) == 2

    def test_retries_exhausted_drops_task(self):
        proto = MasterWorkerProtocol(n_workers=1, max_retries=2)
        proto.run(
            tasks=["doomed"],
            service_fn=lambda t: 1.0,
            fail_fn=lambda t, a: True,
        )
        assert proto.results == []
        assert proto.dropped == ["doomed"]

    def test_communication_overhead_grows_with_messages(self):
        proto_few = MasterWorkerProtocol(n_workers=2)
        proto_few.run(tasks=list(range(4)), service_fn=lambda t: 1.0)
        proto_many = MasterWorkerProtocol(n_workers=2)
        proto_many.run(tasks=list(range(40)), service_fn=lambda t: 1.0)
        assert proto_many.communication_seconds > proto_few.communication_seconds

    def test_makespan_includes_latency(self):
        clock = SimClock()
        slow = Channel(clock, base_latency=5.0)
        proto = MasterWorkerProtocol(n_workers=1, clock=clock, channel=slow)
        makespan = proto.run(tasks=["t"], service_fn=lambda t: 1.0)
        # request + task + result latencies dominate the 1 s service.
        assert makespan > 10.0

    def test_deterministic(self):
        def run():
            proto = MasterWorkerProtocol(n_workers=3)
            return proto.run(tasks=list(range(12)), service_fn=lambda t: float(t % 4))

        assert run() == run()
