"""Unit tests for templates, extractors and the XML specification."""

import pytest

from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.extractor import (
    CallableExtractor,
    ExtractorError,
    JsonExtractor,
    RegexExtractor,
    run_extractors,
)
from repro.workflow.spec import (
    DatabaseConfig,
    SpecError,
    parse_workflow_xml,
    workflow_to_xml,
)
from repro.workflow.template import ActivityTemplate, TemplateError

PAPER_XML = """
<SciCumulus>
  <database name="scicumulus" port="5432" server="ec2-50-17-107-164.compute-1.amazonaws.com"/>
  <SciCumulusWorkflow tag="SciDock" description="Docking" exectag="scidock" expdir="/root/scidock/">
    <SciCumulusActivity tag="babel" templatedir="/root/scidock/template_babel/" activation="./experiment.cmd">
      <Relation reltype="Input" name="rel_in_1" filename="input_1.txt"/>
      <Relation reltype="Output" name="rel_out1" filename="output_1.txt"/>
      <File instrumented="true" filename="experiment.cmd"/>
    </SciCumulusActivity>
    <SciCumulusActivity tag="autodock4" operator="MAP" activation="autodock4 -p %=DPF%"/>
  </SciCumulusWorkflow>
</SciCumulus>
"""


class TestTemplate:
    def test_tags_listed_in_order(self):
        t = ActivityTemplate(command="babel -i %=IN% -o %=OUT% --seed %=IN%")
        assert t.tags() == ["IN", "OUT"]

    def test_instantiate(self):
        t = ActivityTemplate(command="babel -isdf %=LIG%.sdf -omol2 %=LIG%.mol2")
        cmd = t.instantiate({"LIG": "0E6"})
        assert cmd == "babel -isdf 0E6.sdf -omol2 0E6.mol2"

    def test_missing_tag_raises(self):
        t = ActivityTemplate(command="run %=X%")
        with pytest.raises(TemplateError, match="X"):
            t.instantiate({"Y": 1})

    def test_validate_against(self):
        t = ActivityTemplate(command="run %=A% %=B%")
        assert t.validate_against(("A",)) == ["B"]
        assert t.validate_against(("A", "B")) == []

    def test_no_tags(self):
        t = ActivityTemplate(command="ls -la")
        assert t.tags() == []
        assert t.instantiate({}) == "ls -la"

    def test_numeric_values_stringified(self):
        t = ActivityTemplate(command="run --seed %=SEED%")
        assert t.instantiate({"SEED": 42}) == "run --seed 42"


class TestExtractors:
    def test_regex_extractor(self):
        ex = RegexExtractor({"feb": r"FEB\s*=\s*([-\d.]+)"})
        assert ex.extract("... FEB = -7.25 kcal/mol") == {"feb": -7.25}

    def test_regex_required_missing_raises(self):
        ex = RegexExtractor({"feb": r"FEB=(\d+)"}, required=("feb",))
        with pytest.raises(ExtractorError, match="feb"):
            ex.extract("nothing here")

    def test_regex_optional_missing_skipped(self):
        ex = RegexExtractor({"feb": r"FEB=([-\d.]+)", "rmsd": r"RMSD=([-\d.]+)"})
        assert ex.extract("FEB=-5.0") == {"feb": -5.0}

    def test_regex_uncastable_kept_raw(self):
        ex = RegexExtractor({"name": r"name=(\w+)"})
        assert ex.extract("name=abc") == {"name": "abc"}

    def test_json_extractor(self):
        ex = JsonExtractor(keys=("feb", "rmsd"), prefix="dock_")
        out = ex.extract('{"feb": -5.5, "rmsd": 9.1, "noise": 1}')
        assert out == {"dock_feb": -5.5, "dock_rmsd": 9.1}

    def test_json_all_keys_by_default(self):
        out = JsonExtractor().extract('{"a": 1, "b": 2}')
        assert out == {"a": 1, "b": 2}

    def test_json_invalid_raises(self):
        with pytest.raises(ExtractorError):
            JsonExtractor().extract("not json")
        with pytest.raises(ExtractorError):
            JsonExtractor().extract("[1,2]")

    def test_callable_extractor(self):
        ex = CallableExtractor(lambda p: {"n": len(p)})
        assert ex.extract("abc") == {"n": 3}

    def test_callable_bad_return_raises(self):
        ex = CallableExtractor(lambda p: 42, name="bad")
        with pytest.raises(ExtractorError, match="bad"):
            ex.extract("x")

    def test_run_extractors_merges(self):
        out = run_extractors(
            [JsonExtractor(keys=("a",)), JsonExtractor(keys=("b",))],
            '{"a": 1, "b": 2}',
        )
        assert out == {"a": 1, "b": 2}


class TestSpec:
    def test_parse_paper_excerpt(self):
        wf, db = parse_workflow_xml(PAPER_XML)
        assert wf.tag == "SciDock"
        assert wf.exectag == "scidock"
        assert wf.expdir == "/root/scidock/"
        assert [a.tag for a in wf.activities] == ["babel", "autodock4"]
        assert db.server.startswith("ec2-50-17-107-164")
        assert db.port == 5432

    def test_template_wiring(self):
        wf, _ = parse_workflow_xml(PAPER_XML)
        babel = wf.activity("babel")
        assert babel.template.templatedir == "/root/scidock/template_babel/"
        assert babel.template.input_relation == "input_1.txt"
        assert babel.template.output_relation == "output_1.txt"

    def test_template_tags_parsed(self):
        wf, _ = parse_workflow_xml(PAPER_XML)
        assert wf.activity("autodock4").template.tags() == ["DPF"]

    def test_invalid_xml_raises(self):
        with pytest.raises(SpecError, match="invalid XML"):
            parse_workflow_xml("<oops")

    def test_wrong_root_raises(self):
        with pytest.raises(SpecError, match="SciCumulus"):
            parse_workflow_xml("<Other/>")

    def test_missing_workflow_raises(self):
        with pytest.raises(SpecError, match="SciCumulusWorkflow"):
            parse_workflow_xml("<SciCumulus/>")

    def test_unknown_operator_raises(self):
        bad = PAPER_XML.replace('operator="MAP"', 'operator="WIBBLE"')
        with pytest.raises(SpecError, match="WIBBLE"):
            parse_workflow_xml(bad)

    def test_bad_reltype_raises(self):
        bad = PAPER_XML.replace('reltype="Input"', 'reltype="Sideways"')
        with pytest.raises(SpecError, match="reltype"):
            parse_workflow_xml(bad)

    def test_roundtrip(self):
        wf, db = parse_workflow_xml(PAPER_XML)
        text = workflow_to_xml(wf, db)
        wf2, db2 = parse_workflow_xml(text)
        assert [a.tag for a in wf2.activities] == [a.tag for a in wf.activities]
        assert db2.server == db.server
        assert wf2.activity("babel").template.input_relation == "input_1.txt"

    def test_serialize_minimal_workflow(self):
        wf = Workflow("W", [Activity("a", Operator.MAP)])
        text = workflow_to_xml(wf)
        wf2, db = parse_workflow_xml(text)
        assert wf2.tag == "W"
        assert isinstance(db, DatabaseConfig)
