"""Edge-case tests for both engines: empty inputs, REDUCE placement,
provenance timing invariants, failure storms."""

import pytest

from repro.cloud.cluster import VirtualCluster
from repro.cloud.failures import ActivityFailureModel
from repro.cloud.provider import CloudProvider
from repro.cloud.simclock import SimClock
from repro.provenance.store import ActivationStatus, ProvenanceStore
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.engine import LocalEngine, SimulatedEngine
from repro.workflow.fault import RetryPolicy
from repro.workflow.relation import Relation


def sim_engine(cores=4, **kw):
    cluster = VirtualCluster(CloudProvider(SimClock()))
    cluster.scale_to(cores)
    return SimulatedEngine(ProvenanceStore(), cluster, **kw)


class TestEmptyInputs:
    def test_local_empty_relation(self):
        wf = Workflow("W", [Activity("a", Operator.MAP, fn=lambda t, c: [dict(t)])])
        report = LocalEngine(ProvenanceStore(), workers=1).run(wf, Relation("in"))
        assert len(report.output) == 0
        assert report.total_activations == 0
        assert report.succeeded

    def test_sim_empty_relation(self):
        wf = Workflow("W", [Activity("a", Operator.MAP, cost_fn=lambda t: 1.0)])
        report = sim_engine().run(wf, Relation("in"))
        assert len(report.output) == 0
        assert report.tet_seconds == 0.0


class TestReducePlacement:
    def test_reduce_midway_in_pipeline(self):
        wf = Workflow(
            "W",
            [
                Activity("dbl", Operator.MAP, fn=lambda t, c: [{"x": t["x"] * 2}],
                         cost_fn=lambda t: 1.0),
                Activity(
                    "sum", Operator.REDUCE,
                    fn=lambda t, c: [{"total": sum(u["x"] for u in t["__tuples__"])}],
                    cost_fn=lambda t: 1.0,
                ),
                Activity("inc", Operator.MAP, fn=lambda t, c: [{"total": t["total"] + 1}],
                         cost_fn=lambda t: 1.0),
            ],
        )
        rel = Relation("in", [{"x": i} for i in range(4)])
        local = LocalEngine(ProvenanceStore(), workers=2).run(wf, rel.copy())
        sim = sim_engine().run(wf, rel.copy())
        assert local.output[0]["total"] == 13  # (0+2+4+6)+1
        assert sim.output[0]["total"] == 13

    def test_reduce_sees_filtered_stream(self):
        wf = Workflow(
            "W",
            [
                Activity("keep_odd", Operator.FILTER,
                         fn=lambda t, c: [t] if t["x"] % 2 else [],
                         cost_fn=lambda t: 1.0),
                Activity(
                    "count", Operator.REDUCE,
                    fn=lambda t, c: [{"n": len(t["__tuples__"])}],
                    cost_fn=lambda t: 1.0,
                ),
            ],
        )
        rel = Relation("in", [{"x": i} for i in range(10)])
        local = LocalEngine(ProvenanceStore(), workers=2).run(wf, rel.copy())
        sim = sim_engine().run(wf, rel.copy())
        assert local.output[0]["n"] == 5
        assert sim.output[0]["n"] == 5


class TestProvenanceTimingInvariants:
    def test_sim_activation_times_ordered_and_disjoint_per_core(self):
        store = ProvenanceStore()
        cluster = VirtualCluster(CloudProvider(SimClock()))
        cluster.scale_to(4)
        wf = Workflow("W", [Activity("a", Operator.MAP, cost_fn=lambda t: 7.0)])
        rel = Relation("in", [{"x": i} for i in range(20)])
        report = SimulatedEngine(store, cluster).run(wf, rel)
        rows = store.activations(report.wkfid, ActivationStatus.FINISHED)
        # start < end everywhere.
        assert all(r["starttime"] < r["endtime"] for r in rows)
        # No two activations overlap on the same core.
        by_core: dict = {}
        for r in rows:
            by_core.setdefault((r["vm_id"], r["core_index"]), []).append(
                (r["starttime"], r["endtime"])
            )
        for spans in by_core.values():
            spans.sort()
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-9

    def test_sim_tet_spans_all_activations(self):
        store = ProvenanceStore()
        cluster = VirtualCluster(CloudProvider(SimClock()))
        cluster.scale_to(4)
        wf = Workflow("W", [Activity("a", Operator.MAP, cost_fn=lambda t: 3.0)])
        report = SimulatedEngine(store, cluster).run(
            wf, Relation("in", [{"x": i} for i in range(10)])
        )
        rows = store.activations(report.wkfid)
        last_end = max(r["endtime"] for r in rows)
        wf_row = store.workflow_row(report.wkfid)
        assert wf_row["endtime"] == pytest.approx(last_end)


class TestFailureStorms:
    def test_high_failure_rate_still_completes(self):
        engine = sim_engine(
            failure_model=ActivityFailureModel(rate=0.6, seed=11),
            retry=RetryPolicy(max_attempts=15),
        )
        wf = Workflow("W", [Activity("a", Operator.MAP, cost_fn=lambda t: 1.0)])
        rel = Relation("in", [{"x": i} for i in range(10)])
        report = engine.run(wf, rel)
        assert len(report.output) == 10
        assert report.retried > 0

    def test_exhausted_retries_drop_tuples(self):
        # rate ~1 is not allowed; use a key-targeted always-fail model.
        class AlwaysFail:
            def fails(self, key, attempt=0):
                return True

        engine = sim_engine(
            failure_model=AlwaysFail(), retry=RetryPolicy(max_attempts=2)
        )
        wf = Workflow("W", [Activity("a", Operator.MAP, cost_fn=lambda t: 1.0)])
        report = engine.run(wf, Relation("in", [{"x": 1}]))
        assert len(report.output) == 0
        assert report.counts.get("FAILED", 0) == 2  # both attempts recorded

    def test_local_engine_mixed_failures_deterministic_outputs(self):
        def flaky(t, c):
            if t["x"] == 3:
                raise RuntimeError("always bad")
            return [dict(t)]

        wf = Workflow("W", [Activity("a", Operator.MAP, fn=flaky)])
        rel = Relation("in", [{"x": i} for i in range(5)])
        engine = LocalEngine(ProvenanceStore(), workers=3, retry=RetryPolicy(max_attempts=2))
        report = engine.run(wf, rel)
        assert sorted(t["x"] for t in report.output) == [0, 1, 2, 4]
        assert not report.succeeded
