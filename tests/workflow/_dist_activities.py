"""Module-level activation functions for the distributed-backend tests.

The distributed backend pickles activation callables by reference, so
everything a worker node executes must live in an importable module —
tests load this file under the stable module name ``_dist_activities``
and worker subprocesses import it from ``PYTHONPATH``.
"""

import time
from pathlib import Path


def prep(tup, context):
    """Stage 1: deterministic enrichment, keeps the receptor affinity."""
    return [
        {
            "key": tup["key"],
            "receptor_id": tup.get("receptor_id", ""),
            "weight": len(tup["key"]) * 3,
        }
    ]


def finish(tup, context):
    """Stage 2: deterministic transform of stage 1's output."""
    return [
        {
            "key": tup["key"],
            "receptor_id": tup.get("receptor_id", ""),
            "out": f"{tup['key'].upper()}:{tup['weight']}",
        }
    ]


def paced(tup, context):
    """Cooperative sleep so a run stays in flight long enough to kill a
    node under it; echoes the tuple."""
    token = context.get("cancel_token")
    seconds = float(tup.get("sleep_s", 0.1))
    if token is not None and hasattr(token, "sleep"):
        token.sleep(seconds)
    else:  # pragma: no cover - tokenless context
        time.sleep(seconds)
    return [{"key": tup["key"], "receptor_id": tup.get("receptor_id", "")}]


def gated(tup, context):
    """Spin while the gate file exists (``slow-*`` keys only): pins the
    run mid-pipeline so the chaos test can SIGKILL the director group."""
    if tup["key"].startswith("slow"):
        gate = Path(context["gate_path"])
        while gate.exists():
            time.sleep(0.05)
    return [{"key": tup["key"], "out": tup["key"].upper()}]
