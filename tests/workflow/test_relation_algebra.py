"""Unit tests for relations and the workflow algebra."""

import pytest

from repro.workflow.activity import Activity, ActivityError, Operator, Workflow
from repro.workflow.algebra import apply_multi, apply_operator, make_filter, make_map
from repro.workflow.relation import Relation, RelationError, tuple_key


class TestRelation:
    def test_schema_inferred(self):
        r = Relation("r", [{"a": 1, "b": 2}])
        assert r.schema == ("a", "b")

    def test_schema_enforced(self):
        r = Relation("r", [{"a": 1}])
        with pytest.raises(RelationError, match="schema"):
            r.append({"b": 2})

    def test_requires_name(self):
        with pytest.raises(RelationError):
            Relation("")

    def test_non_dict_rejected(self):
        with pytest.raises(RelationError):
            Relation("r", [[1, 2]])

    def test_len_iter_getitem(self):
        r = Relation("r", [{"a": 1}, {"a": 2}])
        assert len(r) == 2
        assert [t["a"] for t in r] == [1, 2]
        assert r[1]["a"] == 2

    def test_column(self):
        r = Relation("r", [{"a": 1}, {"a": 2}])
        assert r.column("a") == [1, 2]
        with pytest.raises(RelationError):
            r.column("z")

    def test_project(self):
        r = Relation("r", [{"a": 1, "b": 2}])
        p = r.project(["a"])
        assert p.schema == ("a",)
        with pytest.raises(RelationError):
            r.project(["zz"])

    def test_copy_independent(self):
        r = Relation("r", [{"a": 1}])
        c = r.copy()
        c[0]["a"] = 99
        assert r[0]["a"] == 1

    def test_empty_fields_raises(self):
        with pytest.raises(RelationError):
            Relation("r").fields()

    def test_tuples_copied_on_append(self):
        src = {"a": 1}
        r = Relation("r", [src])
        src["a"] = 42
        assert r[0]["a"] == 1


class TestTupleKey:
    def test_explicit_key_field(self):
        assert tuple_key({"key": "X"}, 0) == "X"

    def test_scidock_convention(self):
        assert tuple_key({"ligand_id": "0E6", "receptor_id": "2HHN"}) == "0E6_2HHN"

    def test_positional_fallback(self):
        assert tuple_key({"a": 1}, 7) == "tuple-7"

    def test_content_fallback(self):
        assert "a=1" in tuple_key({"a": 1})


class TestActivity:
    def test_requires_tag(self):
        with pytest.raises(ActivityError):
            Activity(tag="")

    def test_map_must_emit_one(self):
        a = Activity("m", Operator.MAP, fn=lambda t, c: [])
        with pytest.raises(ActivityError, match="exactly 1"):
            a.run({}, {})

    def test_filter_must_emit_at_most_one(self):
        a = Activity("f", Operator.FILTER, fn=lambda t, c: [{}, {}])
        with pytest.raises(ActivityError, match="0 or 1"):
            a.run({"x": 1}, {})

    def test_missing_fn_raises(self):
        with pytest.raises(ActivityError, match="callable"):
            Activity("m").run({}, {})

    def test_default_cost(self):
        assert Activity("m").cost({}) == 1.0

    def test_negative_cost_raises(self):
        a = Activity("m", cost_fn=lambda t: -1)
        with pytest.raises(ActivityError, match="negative"):
            a.cost({})

    def test_would_loop(self):
        a = Activity("m", looping_predicate=lambda t: t.get("hg", False))
        assert a.would_loop({"hg": True})
        assert not a.would_loop({"hg": False})
        assert not Activity("n").would_loop({"hg": True})


class TestWorkflow:
    def test_duplicate_tags_rejected(self):
        with pytest.raises(ActivityError, match="duplicate"):
            Workflow("w", [Activity("a"), Activity("a")])

    def test_add_and_lookup(self):
        w = Workflow("w").add(Activity("a")).add(Activity("b"))
        assert len(w) == 2
        assert w.activity("b").tag == "b"
        with pytest.raises(KeyError):
            w.activity("zz")

    def test_add_duplicate_raises(self):
        w = Workflow("w", [Activity("a")])
        with pytest.raises(ActivityError):
            w.add(Activity("a"))


class TestAlgebra:
    def test_map_operator(self):
        act = make_map("double", lambda t: {"x": t["x"] * 2})
        out = apply_operator(act, Relation("r", [{"x": 1}, {"x": 2}]))
        assert out.column("x") == [2, 4]

    def test_filter_operator(self):
        act = make_filter("pos", lambda t: t["x"] > 0)
        out = apply_operator(act, Relation("r", [{"x": -1}, {"x": 5}]))
        assert out.column("x") == [5]

    def test_split_map(self):
        act = Activity(
            "fan", Operator.SPLIT_MAP, fn=lambda t, c: [{"x": t["x"]}, {"x": -t["x"]}]
        )
        out = apply_operator(act, Relation("r", [{"x": 3}]))
        assert out.column("x") == [3, -3]

    def test_reduce(self):
        act = Activity(
            "sum",
            Operator.REDUCE,
            fn=lambda t, c: [{"total": sum(u["x"] for u in t["__tuples__"])}],
        )
        out = apply_operator(act, Relation("r", [{"x": 1}, {"x": 2}, {"x": 3}]))
        assert out[0]["total"] == 6

    def test_reduce_without_fn_raises(self):
        with pytest.raises(ActivityError):
            apply_operator(Activity("r", Operator.REDUCE), Relation("x", [{"a": 1}]))

    def test_sr_query(self):
        act = Activity(
            "top",
            Operator.SR_QUERY,
            fn=lambda t, c: sorted(t["__relation__"], key=lambda u: -u["x"])[:1],
        )
        out = apply_operator(act, Relation("r", [{"x": 1}, {"x": 9}, {"x": 5}]))
        assert out[0]["x"] == 9

    def test_mr_query(self):
        act = Activity(
            "join",
            Operator.MR_QUERY,
            fn=lambda t, c: [
                {"pair": f"{a['id']}-{b['id']}"}
                for a in t["__relations__"]["left"]
                for b in t["__relations__"]["right"]
            ],
        )
        out = apply_multi(
            act,
            {
                "left": Relation("l", [{"id": "A"}]),
                "right": Relation("r", [{"id": "X"}, {"id": "Y"}]),
            },
        )
        assert out.column("pair") == ["A-X", "A-Y"]

    def test_mr_query_wrong_operator(self):
        with pytest.raises(ActivityError):
            apply_multi(Activity("m", Operator.MAP, fn=lambda t, c: []), {})

    def test_mr_query_on_apply_operator_raises(self):
        act = Activity("m", Operator.MR_QUERY, fn=lambda t, c: [])
        with pytest.raises(ActivityError, match="apply_multi"):
            apply_operator(act, Relation("r", [{"x": 1}]))
