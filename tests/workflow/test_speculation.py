"""Straggler speculation lifecycle and live elastic pool resizing.

Covers the ISSUE-6 acceptance points on the real engine: winner/loser
provenance records, loser cancellation on both backends, no speculation
on a cold distribution, determinism with the quantile at 1.0, recovery
analysis ignoring speculation rows, and the adaptive policy actually
resizing the live pool mid-run.
"""

from __future__ import annotations

import os
import threading
import time

from repro.perf.online_cost import OnlineCostService
from repro.provenance.store import ProvenanceStore
from repro.workflow import (
    Activity,
    LocalEngine,
    Operator,
    Relation,
    SPECULATION_ERRMSG_PREFIX,
    Workflow,
)
from repro.workflow.adaptive import AdaptiveElasticityPolicy
from repro.workflow.reexec import analyze_run

_LOCK = threading.Lock()
_CALLS: dict[str, int] = {}


def _reset_calls() -> None:
    with _LOCK:
        _CALLS.clear()


def _straggle_once(tup: dict, context: dict) -> list[dict]:
    """First attempt on the ``slow`` key hangs; every other run is fast.

    The hang sleeps on the run's cancellation token, so the losing twin
    is released the moment the engine aborts it (threads backend).
    """
    key = tup["key"]
    with _LOCK:
        n = _CALLS.get(key, 0)
        _CALLS[key] = n + 1
    if tup.get("slow") and n == 0:
        context["cancel_token"].sleep(10.0)
    else:
        time.sleep(0.02)
    return [{"key": key, "slow": tup.get("slow", False)}]


def _spawn_dock(tup: dict, context: dict) -> list[dict]:
    """Processes-backend variant: marker file picks the one straggler.

    The first process to claim the marker sleeps uninterruptibly (only
    SIGKILL stops it); the duplicate attempt finds the marker taken and
    takes the fast path.
    """
    if tup.get("slow"):
        marker = os.path.join(tup["scratch"], "straggler.marker")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
            time.sleep(15.0)
        except FileExistsError:
            time.sleep(0.05)
    else:
        time.sleep(0.05)
    return [{"key": tup["key"]}]


def _relation(n: int, slow_key: str | None = None, **extra) -> Relation:
    rel = Relation("in")
    for i in range(n):
        rel.append(
            {"key": f"k{i}", "slow": slow_key == f"k{i}", **extra}
        )
    return rel


def _workflow(fn) -> Workflow:
    wf = Workflow(tag="spec-test")
    wf.add(Activity("dock", Operator.MAP, fn=fn))
    return wf


def _warm_service(quantile: float = 0.95) -> OnlineCostService:
    svc = OnlineCostService(speculation_quantile=quantile)
    for _ in range(20):
        svc.observe("dock", {"key": "warm"}, 0.02)
    return svc


class TestSpeculationThreads:
    def test_winner_loser_lifecycle(self):
        _reset_calls()
        store = ProvenanceStore()
        engine = LocalEngine(store, workers=2, cost_service=_warm_service())
        t0 = time.perf_counter()
        report = engine.run(_workflow(_straggle_once), _relation(6, "k0"))
        tet = time.perf_counter() - t0

        assert report.speculative_launched == 1
        assert report.speculative_won == 1
        assert len(report.output) == 6
        assert report.counts.get("FINISHED") == 6
        # The tuple finished via the duplicate, not the 10 s hang.
        assert tet < 5.0

        rows = store.sql(
            "SELECT status, speculative, errormsg FROM hactivation"
            " WHERE tuple_key = 'k0' ORDER BY taskid"
        )
        assert [r["status"] for r in rows] == ["ABORTED", "FINISHED"]
        loser, winner = rows
        assert loser["speculative"] == 0
        assert loser["errormsg"].startswith(SPECULATION_ERRMSG_PREFIX)
        assert winner["speculative"] == 1

    def test_cold_service_never_speculates(self):
        _reset_calls()
        store = ProvenanceStore()
        # Enabled quantile but zero observations: thresholds stay None.
        svc = OnlineCostService(speculation_quantile=0.95)
        engine = LocalEngine(store, workers=2, cost_service=svc)
        report = engine.run(_workflow(_straggle_once), _relation(4))
        assert report.speculative_launched == 0
        assert report.speculative_won == 0
        assert report.counts.get("FINISHED") == 4
        assert report.cost_samples == 4

    def test_quantile_one_is_deterministically_off(self):
        for _ in range(2):
            _reset_calls()
            store = ProvenanceStore()
            svc = _warm_service(quantile=1.0)
            engine = LocalEngine(store, workers=2, cost_service=svc)
            report = engine.run(_workflow(_straggle_once), _relation(4))
            assert not svc.speculation_enabled
            assert report.speculative_launched == 0
            assert report.speculative_won == 0
            assert report.counts == {"FINISHED": 4}
            assert len(report.output) == 4

    def test_recovery_ignores_speculation_rows(self):
        _reset_calls()
        store = ProvenanceStore()
        engine = LocalEngine(store, workers=2, cost_service=_warm_service())
        workflow = _workflow(_straggle_once)
        relation = _relation(6, "k0")
        report = engine.run(workflow, relation)
        assert report.speculative_won == 1

        plan = analyze_run(store, report.wkfid, workflow, relation)
        # The superseded primary's ABORTED row and the winning duplicate
        # must not read as work lost.
        assert plan.keys_to_rerun == set()
        assert plan.completed_keys == {f"k{i}" for i in range(6)}


class TestSpeculationProcesses:
    def test_loser_worker_killed_and_twin_wins(self, tmp_path):
        store = ProvenanceStore()
        engine = LocalEngine(
            store, workers=2, backend="processes",
            cost_service=_warm_service(),
        )
        t0 = time.perf_counter()
        report = engine.run(
            _workflow(_spawn_dock),
            _relation(4, "k0", scratch=str(tmp_path)),
        )
        tet = time.perf_counter() - t0

        assert report.speculative_launched >= 1
        assert report.speculative_won == 1
        assert report.counts.get("FINISHED") == 4
        assert len(report.output) == 4
        # The 15 s hang was SIGKILLed, not waited out.
        assert tet < 12.0

        rows = store.sql(
            "SELECT status, speculative, errormsg FROM hactivation"
            " WHERE tuple_key = 'k0' ORDER BY taskid"
        )
        statuses = {r["status"] for r in rows}
        assert "FINISHED" in statuses
        assert any(
            r["status"] == "ABORTED"
            and r["errormsg"].startswith(SPECULATION_ERRMSG_PREFIX)
            for r in rows
        )
        assert any(
            r["speculative"] == 1 and r["status"] == "FINISHED" for r in rows
        )


class TestElasticPool:
    def test_policy_resizes_live_thread_pool(self):
        store = ProvenanceStore()

        def nap(tup, context):
            time.sleep(0.05)
            return [dict(tup)]

        wf = Workflow(tag="elastic-test")
        wf.add(Activity("nap", Operator.MAP, fn=nap))
        rel = Relation("in")
        for i in range(12):
            rel.append({"key": f"k{i}"})

        engine = LocalEngine(
            store, workers=2,
            elasticity=AdaptiveElasticityPolicy(min_cores=1, max_cores=4),
        )
        report = engine.run(wf, rel)
        assert report.counts == {"FINISHED": 12}
        # The backlog demanded more than the configured 2 workers, and
        # the engine actually dispatched beyond them.
        assert report.pool_resizes >= 1
        assert report.peak_cores > 2

    def test_without_policy_report_counters_stay_zero(self):
        store = ProvenanceStore()

        def quick(tup, context):
            return [dict(tup)]

        wf = Workflow(tag="static-test")
        wf.add(Activity("quick", Operator.MAP, fn=quick))
        rel = Relation("in")
        for i in range(4):
            rel.append({"key": f"k{i}"})

        report = LocalEngine(store, workers=2).run(wf, rel)
        assert report.pool_resizes == 0
        assert report.speculative_launched == 0
        assert report.cost_samples == 0
