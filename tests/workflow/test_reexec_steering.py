"""Unit tests for re-execution recovery and runtime steering."""

import time

import pytest

from repro.provenance.store import ActivationStatus, ProvenanceStore
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.engine import LocalEngine
from repro.workflow.fault import RetryPolicy, Watchdog
from repro.workflow.reexec import analyze_run, resume_failed
from repro.workflow.relation import Relation
from repro.workflow.steering import SteeringControl, SteeringMonitor


def two_stage_workflow(fail_keys=(), fail_once_keys=()):
    """A 2-activity workflow whose second stage fails for chosen keys."""
    attempts: dict[str, int] = {}

    def stage2(t, c):
        k = t["key"]
        attempts[k] = attempts.get(k, 0) + 1
        if k in fail_keys:
            raise RuntimeError("permanent")
        if k in fail_once_keys and attempts[k] == 1:
            raise RuntimeError("transient")
        return [{"key": k, "out": k.upper()}]

    return Workflow(
        "W",
        [
            Activity("stage1", Operator.MAP, fn=lambda t, c: [dict(t)]),
            Activity("stage2", Operator.MAP, fn=stage2),
        ],
    )


REL = Relation("in", [{"key": k} for k in ("a", "b", "c")])


class TestAnalyzeRun:
    def test_clean_run_needs_nothing(self):
        store = ProvenanceStore()
        wf = two_stage_workflow()
        report = LocalEngine(store, workers=1).run(wf, REL.copy())
        plan = analyze_run(store, report.wkfid, wf, REL.copy())
        assert plan.completed_keys == {"a", "b", "c"}
        assert plan.keys_to_rerun == set()

    def test_failed_keys_detected(self):
        store = ProvenanceStore()
        wf = two_stage_workflow(fail_keys=("b",))
        engine = LocalEngine(store, workers=1, retry=RetryPolicy(max_attempts=2))
        report = engine.run(wf, REL.copy())
        plan = analyze_run(store, report.wkfid, wf, REL.copy())
        assert plan.failed_keys == {"b"}
        assert plan.completed_keys == {"a", "c"}
        assert "b" in plan.summary()
        assert plan.keys_to_rerun == {"b"}

    def test_retry_success_not_flagged(self):
        store = ProvenanceStore()
        wf = two_stage_workflow(fail_once_keys=("a",))
        engine = LocalEngine(store, workers=1, retry=RetryPolicy(max_attempts=3))
        report = engine.run(wf, REL.copy())
        plan = analyze_run(store, report.wkfid, wf, REL.copy())
        assert plan.failed_keys == set()
        assert plan.completed_keys == {"a", "b", "c"}

    def test_missing_keys_detected(self):
        """Tuples absent from provenance (crash before dispatch) count."""
        store = ProvenanceStore()
        wf = two_stage_workflow()
        partial = Relation("in", [{"key": "a"}])
        report = LocalEngine(store, workers=1).run(wf, partial)
        bigger = REL.copy()
        plan = analyze_run(store, report.wkfid, wf, bigger)
        assert plan.missing_keys == {"b", "c"}

    def test_blocked_keys_not_rerun(self):
        store = ProvenanceStore()
        wf = two_stage_workflow()
        wf.activities[0].looping_predicate = lambda t: t["key"] == "c"
        report = LocalEngine(store, workers=1).run(wf, REL.copy())
        plan = analyze_run(store, report.wkfid, wf, REL.copy())
        assert plan.blocked_keys == {"c"}
        assert "c" not in plan.keys_to_rerun

    def test_watchdog_timeouts_are_rerunnable(self):
        # A real wall-clock timeout (engine watchdog abort) may be
        # transient, so analyze_run must classify it rerunnable —
        # unlike predicate aborts.
        store = ProvenanceStore()

        def maybe_hang(t, c):
            if t["key"] == "b":
                time.sleep(1.0)
            return [dict(t)]

        wf = Workflow(
            "W",
            [
                Activity(
                    "work", Operator.MAP, fn=maybe_hang, cost_fn=lambda t: 0.0
                )
            ],
        )
        engine = LocalEngine(
            store,
            workers=1,
            watchdog=Watchdog(timeout=0.2, multiplier=1.5, grace=0.05),
        )
        report = engine.run(wf, REL.copy())
        assert report.timeouts == 1
        plan = analyze_run(store, report.wkfid, wf, REL.copy())
        assert plan.timeout_keys == {"b"}
        assert plan.aborted_keys == {"b"}
        assert "b" in plan.keys_to_rerun
        assert "1 watchdog timeouts" in plan.summary()

    def test_predicate_aborts_stay_excluded(self):
        # An ABORTED row from the looping predicate (Hg routine off) is
        # a known-bad input: not a timeout, never re-run.
        store = ProvenanceStore()
        wf = two_stage_workflow()
        wf.activities[0].looping_predicate = lambda t: t["key"] == "c"
        engine = LocalEngine(store, workers=1, block_known_loopers=False)
        report = engine.run(wf, REL.copy())
        assert report.aborted == 1
        plan = analyze_run(store, report.wkfid, wf, REL.copy())
        assert plan.aborted_keys == {"c"}
        assert plan.timeout_keys == set()
        assert "c" not in plan.keys_to_rerun


class TestTimeoutClassificationByActivity:
    """Regression: timeout marks are keyed per (tag, key), so an ABORT
    by one activity can't clobber a watchdog-timeout mark left by a
    *different* activity on the same tuple key."""

    WATCHDOG_MSG = "watchdog timeout after 2.0s (worker killed)"

    def _store_with(self, rows):
        """Synthesize provenance from (tag, key, status, errormsg) rows,
        written in order — exactly the order analyze_run folds them."""
        store = ProvenanceStore()
        wkfid = store.begin_workflow("W", starttime=0.0)
        acts: dict[str, int] = {}
        for tag, key, status, errormsg in rows:
            if tag not in acts:
                acts[tag] = store.register_activity(wkfid, tag)
            tid = store.begin_activation(acts[tag], key, 0.0)
            store.end_activation(tid, 1.0, status, 0, errormsg)
        store.end_workflow(wkfid, endtime=10.0)
        return store, wkfid

    def _workflow(self):
        return Workflow(
            "W",
            [
                Activity("first", Operator.MAP, fn=lambda t, c: [dict(t)]),
                Activity("second", Operator.MAP, fn=lambda t, c: [dict(t)]),
            ],
        )

    def test_predicate_abort_by_other_activity_keeps_timeout(self):
        # The regression order: watchdog mark first, then a non-watchdog
        # ABORT by a different activity on the same key. Keyed by tuple
        # key alone, the second row discarded the mark and "b" was
        # misclassified as a non-rerunnable predicate abort.
        store, wkfid = self._store_with([
            ("first", "a", ActivationStatus.FINISHED, None),
            ("second", "a", ActivationStatus.FINISHED, None),
            ("first", "b", ActivationStatus.ABORTED, self.WATCHDOG_MSG),
            ("second", "b", ActivationStatus.ABORTED, "looping state killed"),
        ])
        plan = analyze_run(
            store, wkfid, self._workflow(), Relation("in", [{"key": "a"}, {"key": "b"}])
        )
        assert plan.timeout_keys == {"b"}
        assert "b" in plan.keys_to_rerun

    def test_timeout_detected_in_either_event_order(self):
        store, wkfid = self._store_with([
            ("second", "b", ActivationStatus.ABORTED, "looping state killed"),
            ("first", "b", ActivationStatus.ABORTED, self.WATCHDOG_MSG),
        ])
        plan = analyze_run(
            store, wkfid, self._workflow(), Relation("in", [{"key": "b"}])
        )
        assert plan.timeout_keys == {"b"}

    def test_finished_retry_of_same_activity_clears_mark(self):
        # A later FINISHED of the *same* activity supersedes its own
        # watchdog mark — the tuple's fate is then decided elsewhere.
        store, wkfid = self._store_with([
            ("first", "b", ActivationStatus.ABORTED, self.WATCHDOG_MSG),
            ("first", "b", ActivationStatus.FINISHED, None),
            ("second", "b", ActivationStatus.ABORTED, "looping state killed"),
        ])
        plan = analyze_run(
            store, wkfid, self._workflow(), Relation("in", [{"key": "b"}])
        )
        assert plan.timeout_keys == set()
        assert plan.aborted_keys == {"b"}
        assert "b" not in plan.keys_to_rerun


class TestResumeFailed:
    def test_resume_reruns_only_failures(self):
        store = ProvenanceStore()
        # First run: 'b' fails permanently under 1 attempt.
        wf_fail = two_stage_workflow(fail_keys=("b",))
        engine = LocalEngine(store, workers=1, retry=RetryPolicy(max_attempts=1))
        report1 = engine.run(wf_fail, REL.copy())
        # Recovery run with a healed workflow.
        wf_ok = two_stage_workflow()
        report2, plan = resume_failed(store, report1.wkfid, wf_ok, REL.copy(), engine)
        assert plan.keys_to_rerun == {"b"}
        assert report2 is not None
        assert len(report2.output) == 1
        assert report2.output[0]["key"] == "b"

    def test_resume_noop_when_clean(self):
        store = ProvenanceStore()
        wf = two_stage_workflow()
        engine = LocalEngine(store, workers=1)
        report = engine.run(wf, REL.copy())
        report2, plan = resume_failed(store, report.wkfid, wf, REL.copy(), engine)
        assert report2 is None
        assert plan.keys_to_rerun == set()

    def test_resume_keeps_history_in_same_store(self):
        store = ProvenanceStore()
        wf_fail = two_stage_workflow(fail_keys=("b",))
        engine = LocalEngine(store, workers=1, retry=RetryPolicy(max_attempts=1))
        report1 = engine.run(wf_fail, REL.copy())
        report2, _ = resume_failed(
            store, report1.wkfid, two_stage_workflow(), REL.copy(), engine
        )
        assert report2.wkfid != report1.wkfid
        # Both runs visible in the store.
        assert store.workflow_row(report1.wkfid)["tag"] == "W"
        assert store.workflow_row(report2.wkfid)["tag"] == "W"

    def test_engine_factory_rebuilds_original_config(self):
        # Without an engine, the resume must not silently fall back to
        # a default engine: the factory rebuilds the original run's
        # backend/workers/policies against the same store.
        store = ProvenanceStore()
        wf_fail = two_stage_workflow(fail_keys=("b",))
        original = LocalEngine(
            store, workers=2, retry=RetryPolicy(max_attempts=1, base_delay=0.01)
        )
        report1 = original.run(wf_fail, REL.copy())
        built = []

        def factory(s):
            engine = LocalEngine(
                s, workers=2, retry=RetryPolicy(max_attempts=1, base_delay=0.01)
            )
            built.append(engine)
            return engine

        report2, plan = resume_failed(
            store, report1.wkfid, two_stage_workflow(), REL.copy(),
            engine_factory=factory,
        )
        assert plan.keys_to_rerun == {"b"}
        assert built and built[0].store is store
        assert report2 is not None and len(report2.output) == 1

    def test_resume_recovers_original_context_from_journal(self):
        # Regression: resume_failed used to pass context=None straight
        # through to engine.run even when the original run shipped
        # kernel/etable/fault-injection keys, silently re-running the
        # recovered work under default configuration.
        store = ProvenanceStore()
        calls: dict[str, int] = {}

        def work(t, c):
            k = t["key"]
            calls[k] = calls.get(k, 0) + 1
            if k == "b" and calls[k] == 1:
                raise RuntimeError("boom")
            return [{"key": k, "mode": c.get("kernel", "MISSING")}]

        wf = Workflow("W", [Activity("work", Operator.MAP, fn=work)])
        engine = LocalEngine(store, workers=1, retry=RetryPolicy(max_attempts=1))
        report1 = engine.run(wf, REL.copy(), context={"kernel": "tables"})
        report2, plan = resume_failed(store, report1.wkfid, wf, REL.copy(), engine)
        assert plan.keys_to_rerun == {"b"}
        assert [t["mode"] for t in report2.output] == ["tables"]

    def test_resume_explicit_context_still_wins(self):
        store = ProvenanceStore()
        calls: dict[str, int] = {}

        def work(t, c):
            k = t["key"]
            calls[k] = calls.get(k, 0) + 1
            if k == "b" and calls[k] == 1:
                raise RuntimeError("boom")
            return [{"key": k, "mode": c.get("kernel", "MISSING")}]

        wf = Workflow("W", [Activity("work", Operator.MAP, fn=work)])
        engine = LocalEngine(store, workers=1, retry=RetryPolicy(max_attempts=1))
        report1 = engine.run(wf, REL.copy(), context={"kernel": "tables"})
        report2, _ = resume_failed(
            store, report1.wkfid, wf, REL.copy(), engine,
            context={"kernel": "analytic"},
        )
        assert [t["mode"] for t in report2.output] == ["analytic"]

    def test_engine_and_factory_are_exclusive(self):
        store = ProvenanceStore()
        wf = two_stage_workflow()
        engine = LocalEngine(store, workers=1)
        report = engine.run(wf, REL.copy())
        with pytest.raises(ValueError):
            resume_failed(
                store, report.wkfid, wf, REL.copy(), engine,
                engine_factory=lambda s: engine,
            )


class TestSteeringControl:
    def test_abort_tuple(self):
        c = SteeringControl()
        c.abort_tuple("x")
        assert c.should_abort("any_activity", "x")
        assert not c.should_abort("any_activity", "y")

    def test_abort_activation_scoped(self):
        c = SteeringControl()
        c.abort_activation("docking", "x")
        assert c.should_abort("docking", "x")
        assert not c.should_abort("babel", "x")

    def test_rules_count(self):
        c = SteeringControl()
        c.abort_tuple("x")
        c.abort_activation("a", "y")
        assert c.rules == 2


class TestEngineSteeringIntegration:
    def test_local_engine_blocks_steered_tuples(self):
        store = ProvenanceStore()
        control = SteeringControl()
        control.abort_tuple("b")
        wf = two_stage_workflow()
        report = LocalEngine(store, workers=1).run(
            wf, REL.copy(), context={"steering": control}
        )
        assert report.blocked >= 1
        assert {t["key"] for t in report.output} == {"a", "c"}
        blocked = store.activations(report.wkfid, ActivationStatus.BLOCKED)
        assert any("steering" in r["errormsg"] for r in blocked)

    def test_simulated_engine_blocks_steered_tuples(self):
        from repro.cloud.cluster import VirtualCluster
        from repro.cloud.provider import CloudProvider
        from repro.cloud.simclock import SimClock
        from repro.workflow.engine import SimulatedEngine

        store = ProvenanceStore()
        control = SteeringControl()
        control.abort_tuple("a")
        cluster = VirtualCluster(CloudProvider(SimClock()))
        cluster.scale_to(4)
        wf = Workflow(
            "W", [Activity("s", Operator.MAP, cost_fn=lambda t: 3.0)]
        )
        report = SimulatedEngine(store, cluster).run(
            wf, REL.copy(), context={"steering": control}
        )
        assert report.blocked == 1
        assert len(report.output) == 2


class TestSteeringMonitor:
    def _running_store(self):
        store = ProvenanceStore()
        wkfid = store.begin_workflow("W", starttime=0.0)
        act = store.register_activity(wkfid, "docking")
        # Two finished (avg 10 s), one still running since t=0.
        for k, dur in (("a", 8.0), ("b", 12.0)):
            tid = store.begin_activation(act, k, 0.0)
            store.end_activation(tid, dur)
        store.begin_activation(act, "stuck", 0.0)
        return store, wkfid

    def test_progress(self):
        store, wkfid = self._running_store()
        m = SteeringMonitor(store, wkfid)
        assert m.progress() == {"FINISHED": 2, "RUNNING": 1}

    def test_abnormal_detection(self):
        store, wkfid = self._running_store()
        m = SteeringMonitor(store, wkfid)
        # At t=200 the running activation is 20x the 10 s average.
        flagged = m.abnormal_activations(now=200.0, threshold=10.0)
        assert len(flagged) == 1
        assert flagged[0].tuple_key == "stuck"
        # At t=50 (5x) nothing is flagged yet.
        assert m.abnormal_activations(now=50.0, threshold=10.0) == []

    def test_abnormal_threshold_validation(self):
        store, wkfid = self._running_store()
        with pytest.raises(ValueError):
            SteeringMonitor(store, wkfid).abnormal_activations(1.0, threshold=1.0)

    def test_abort_abnormal_installs_rule(self):
        store, wkfid = self._running_store()
        m = SteeringMonitor(store, wkfid)
        flagged = m.abort_abnormal(now=200.0)
        assert flagged
        assert m.control.should_abort("anything", "stuck")

    def test_anticipated_results(self):
        store, wkfid = self._running_store()
        rows = store.activations(wkfid)
        store.record_extract(rows[0]["taskid"], "feb", -7.5)
        store.record_extract(rows[1]["taskid"], "feb", -3.0)
        m = SteeringMonitor(store, wkfid)
        best = m.anticipated_results("feb", limit=1)
        assert best == [("a", -7.5)]
