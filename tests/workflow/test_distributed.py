"""Distributed backend: golden parity, node death, director crash-resume.

Three acceptance properties of the director/worker execution plane:

* **Golden parity** — a ≥2-node socket run produces exactly the same
  completed tuple set, output relation and provenance lineage as a
  single-process threads run of the same workflow.
* **Node loss** — a worker node SIGKILLed mid-run surfaces its in-flight
  activations as infrastructure failures, the run completes on the
  survivors, and the loss is journaled and counted as quarantine.
* **Director crash** — SIGKILL the whole director process group
  mid-pipeline, then ``LocalEngine.resume`` finishes the run with zero
  re-execution of any tuple the crashed run durably completed.
"""

import importlib.util
import os
import signal
import sqlite3
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.provenance.store import ProvenanceStore
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.engine import LocalEngine
from repro.workflow.journal import replay_journal
from repro.workflow.relation import Relation

_HERE = Path(__file__).resolve().parent
SRC = _HERE.parents[1] / "src"

# Loaded under the stable module name the workers import from
# PYTHONPATH, so activation callables pickle by reference. Reuse any
# existing registration: a second copy under the same name would break
# pickle's by-reference identity check for the first copy's functions.
da = sys.modules.get("_dist_activities")
if da is None:
    _spec = importlib.util.spec_from_file_location(
        "_dist_activities", _HERE / "_dist_activities.py"
    )
    da = importlib.util.module_from_spec(_spec)
    sys.modules["_dist_activities"] = da
    _spec.loader.exec_module(da)

_crash_spec = importlib.util.spec_from_file_location(
    "_dist_crash_child", _HERE / "_dist_crash_child.py"
)
crash_child = importlib.util.module_from_spec(_crash_spec)
_crash_spec.loader.exec_module(crash_child)

RECEPTORS = ["R1", "R2", "R3"]
KEYS = [f"pair-{i:02d}" for i in range(12)]


def _worker_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC), str(_HERE), env.get("PYTHONPATH", "")]
    )
    return env


def _spawn_worker(address, node_id: str, slots: int = 2) -> subprocess.Popen:
    host, port = address
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.workflow.worker",
            "--join",
            f"{host}:{port}",
            "--slots",
            str(slots),
            "--node-id",
            node_id,
        ],
        env=_worker_env(),
    )


def _reap(workers, timeout: float = 10.0) -> None:
    for w in workers:
        try:
            w.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            w.kill()
            w.wait(timeout=timeout)


def _two_stage_workflow() -> Workflow:
    return Workflow(
        "distparity",
        [
            Activity("prep", Operator.MAP, fn=da.prep),
            Activity("finish", Operator.MAP, fn=da.finish),
        ],
    )


def _relation() -> Relation:
    return Relation(
        "in",
        [
            {"key": k, "receptor_id": RECEPTORS[i % len(RECEPTORS)]}
            for i, k in enumerate(KEYS)
        ],
    )


def _lineage(store: ProvenanceStore, wkfid: int) -> set:
    """Activation-dependency edges as backend-independent tag tuples."""
    rows = store.sql(
        "SELECT ca.tag AS child_tag, d.child_key,"
        " pa.tag AS parent_tag, d.parent_key"
        " FROM hdependency d"
        " JOIN hactivity ca ON d.child_actid = ca.actid"
        " JOIN hactivity pa ON d.parent_actid = pa.actid"
        " WHERE d.wkfid = ?",
        (wkfid,),
    )
    return {
        (r["child_tag"], r["child_key"], r["parent_tag"], r["parent_key"])
        for r in rows
    }


class TestGoldenParity:
    def test_two_node_run_matches_threads_run(self):
        wf_t = _two_stage_workflow()
        store_t = ProvenanceStore()
        threads_report = LocalEngine(
            store_t, workers=4, backend="threads"
        ).run(wf_t, _relation(), context={"shared_maps": False})

        store_d = ProvenanceStore()
        engine = LocalEngine(
            store_d,
            workers=4,
            backend="distributed",
            min_nodes=2,
            join_timeout=30.0,
        )
        workers = [
            _spawn_worker(engine.director_address, f"parity-{i}")
            for i in range(2)
        ]
        try:
            dist_report = engine.run(
                _two_stage_workflow(),
                _relation(),
                context={"shared_maps": False},
            )
        finally:
            engine.shutdown()
            _reap(workers)

        def out_set(report):
            return sorted(
                (t["key"], t["receptor_id"], t["out"]) for t in report.output
            )

        assert out_set(dist_report) == out_set(threads_report)
        assert len(dist_report.output) == len(KEYS)
        assert dist_report.succeeded and threads_report.succeeded

        # Identical completed tuple sets in the two journals...
        t_done = replay_journal(store_t, threads_report.wkfid).completed
        d_done = replay_journal(store_d, dist_report.wkfid).completed
        assert set(d_done) == set(t_done)
        # ...and identical provenance lineage edges.
        assert _lineage(store_d, dist_report.wkfid) == _lineage(
            store_t, threads_report.wkfid
        )

    def test_per_node_accounting_lands_in_report_and_journal(self):
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=4,
            backend="distributed",
            min_nodes=2,
            join_timeout=30.0,
        )
        workers = [
            _spawn_worker(engine.director_address, f"acct-{i}")
            for i in range(2)
        ]
        try:
            report = engine.run(
                _two_stage_workflow(),
                _relation(),
                context={"shared_maps": False},
            )
        finally:
            engine.shutdown()
            _reap(workers)
        assert report.succeeded
        assert report.nodes_joined == 2
        assert report.nodes_lost == 0
        assert set(report.tuples_per_node) == {"acct-0", "acct-1"}
        # Every tuple ran twice (two MAP stages), somewhere.
        assert sum(report.tuples_per_node.values()) == 2 * len(KEYS)
        assert report.wire_bytes_sent > 0
        assert report.wire_bytes_received > 0

        events = {e["event"] for e in store.journal_events(report.wkfid)}
        assert "node-joined" in events
        # Dispatch events carry the node placement hint.
        from repro.workflow.journal import decode_payload

        dispatched_nodes = {
            (decode_payload(e["payload"]) or {}).get("node")
            for e in store.journal_events(report.wkfid)
            if e["event"] == "dispatched"
        }
        assert dispatched_nodes <= {"acct-0", "acct-1"}
        assert dispatched_nodes - {None}
        # run_finished records the per-node stats for provenance.
        finished = [
            decode_payload(e["payload"])
            for e in store.journal_events(report.wkfid)
            if e["event"] == "run-finished"
        ]
        assert finished and finished[-1]["nodes_joined"] == 2
        assert sum(
            finished[-1]["tuples_per_node"].values()
        ) == 2 * len(KEYS)


class TestNodeLoss:
    def test_sigkill_one_worker_mid_run_completes_on_survivor(self):
        wf = Workflow(
            "distloss", [Activity("paced", Operator.MAP, fn=da.paced)]
        )
        relation = Relation(
            "in",
            [
                {
                    "key": f"k{i:02d}",
                    "receptor_id": RECEPTORS[i % len(RECEPTORS)],
                    "sleep_s": 0.25,
                }
                for i in range(16)
            ],
        )
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=4,
            backend="distributed",
            min_nodes=2,
            join_timeout=30.0,
        )
        victim = _spawn_worker(engine.director_address, "victim")
        survivor = _spawn_worker(engine.director_address, "survivor")
        box: dict = {}

        def _run():
            box["report"] = engine.run(
                wf, relation, context={"shared_maps": False}
            )

        t = threading.Thread(target=_run)
        t.start()
        try:
            # Kill the victim once the run is demonstrably in flight.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if sum(engine._director.tuples_per_node.values()) >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("run never got in flight")
            victim.send_signal(signal.SIGKILL)
            t.join(timeout=120.0)
            assert not t.is_alive(), "run hung after node loss"
        finally:
            engine.shutdown()
            _reap([victim, survivor])

        report = box["report"]
        # Every tuple's output landed; the victim's in-flight attempts
        # are recorded FAILED (infra) then re-run, matching the threads
        # backend's worker-crash semantics — so ``succeeded`` may be
        # False here even though the run recovered completely.
        assert sorted(t["key"] for t in report.output) == sorted(
            f"k{i:02d}" for i in range(16)
        )
        assert report.counts.get("FINISHED", 0) == 16
        assert report.infra_retries >= 1
        assert report.nodes_joined == 2
        assert report.nodes_lost == 1
        assert report.quarantined_workers == 1
        # The victim's in-flight work was re-placed, not lost: the
        # survivor finished everything that still needed running.
        assert report.tuples_per_node.get("survivor", 0) > 0
        events = {e["event"] for e in store.journal_events(report.wkfid)}
        assert "node-lost" in events


class TestDirectorCrashResume:
    LAST_STAGE = 1

    @staticmethod
    def _completed_last_stage(db: Path) -> int:
        try:
            con = sqlite3.connect(db, timeout=2.0)
        except sqlite3.Error:
            return 0
        try:
            row = con.execute(
                "SELECT COUNT(*) FROM hjournal WHERE event = 'completed'"
                " AND stage = ?",
                (TestDirectorCrashResume.LAST_STAGE,),
            ).fetchone()
            return int(row[0])
        except sqlite3.Error:
            return 0
        finally:
            con.close()

    @pytest.mark.parametrize("mode", ["plain", "batched"])
    def test_sigkill_director_then_resume_zero_recompute(
        self, tmp_path, mode
    ):
        db = tmp_path / "prov.db"
        gate = tmp_path / "gate"
        gate.write_text("hold")
        env = _worker_env()
        proc = subprocess.Popen(
            [
                sys.executable,
                str(_HERE / "_dist_crash_child.py"),
                str(db),
                str(gate),
                mode,
            ],
            env=env,
            start_new_session=True,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 90.0
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    out, err = proc.communicate()
                    raise AssertionError(
                        "child exited before the kill: "
                        f"rc={proc.returncode}\n{err.decode()}"
                    )
                if self._completed_last_stage(db) >= 2:
                    break
                time.sleep(0.1)
            else:
                raise AssertionError(
                    "timed out waiting for journaled completions "
                    f"(saw {self._completed_last_stage(db)})"
                )
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10.0)
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait(timeout=10.0)
        gate.unlink()

        with ProvenanceStore(db) as store:
            wkfid = store.sql(
                "SELECT wkfid FROM hworkflow ORDER BY wkfid DESC LIMIT 1"
            )[0]["wkfid"]
            crashed = replay_journal(store, wkfid)
            assert not crashed.finished
            done_last = [
                k for (s, k) in crashed.completed if s == self.LAST_STAGE
            ]
            assert len(done_last) >= 2
            assert (self.LAST_STAGE, "slow-x") not in crashed.terminal

            engine = LocalEngine(store, workers=2, backend="threads")
            report = engine.resume(wkfid, crash_child.build_workflow())

            assert sorted(t["key"] for t in report.output) == sorted(
                crash_child.KEYS
            )
            assert report.replayed == len(crashed.completed)

            # Zero re-execution of durably completed tuples.
            tags = [
                a.tag for a in crash_child.build_workflow().activities
            ]
            executed = {
                (r["tag"], r["tuple_key"])
                for r in store.sql(
                    "SELECT a.tag, t.tuple_key FROM hactivation t"
                    " JOIN hactivity a ON t.actid = a.actid"
                    " WHERE a.wkfid = ?",
                    (report.wkfid,),
                )
            }
            replayed_pairs = {(tags[s], k) for (s, k) in crashed.completed}
            assert executed.isdisjoint(replayed_pairs)
            assert (tags[self.LAST_STAGE], "slow-x") in executed


class TestBatchedGoldenParity:
    """TASK_BATCH + zlib frames are a transport detail: results, journal
    and lineage must be bit-for-bit identical to the unbatched run."""

    def test_batched_compressed_run_matches_threads_run(self):
        wf_t = _two_stage_workflow()
        store_t = ProvenanceStore()
        threads_report = LocalEngine(
            store_t, workers=4, backend="threads"
        ).run(wf_t, _relation(), context={"shared_maps": False})

        store_d = ProvenanceStore()
        engine = LocalEngine(
            store_d,
            workers=4,
            backend="distributed",
            min_nodes=2,
            join_timeout=30.0,
            batch_size=4,
            batch_linger=0.05,
            compress_frames=True,
        )
        workers = [
            _spawn_worker(engine.director_address, f"batchparity-{i}")
            for i in range(2)
        ]
        try:
            dist_report = engine.run(
                _two_stage_workflow(),
                _relation(),
                context={"shared_maps": False},
            )
            node_stats = {
                k: dict(v) for k, v in engine._director.node_stats.items()
            }
        finally:
            engine.shutdown()
            _reap(workers)

        def out_set(report):
            return sorted(
                (t["key"], t["receptor_id"], t["out"]) for t in report.output
            )

        assert out_set(dist_report) == out_set(threads_report)
        assert len(dist_report.output) == len(KEYS)
        assert dist_report.succeeded and threads_report.succeeded
        t_done = replay_journal(store_t, threads_report.wkfid).completed
        d_done = replay_journal(store_d, dist_report.wkfid).completed
        assert set(d_done) == set(t_done)
        assert _lineage(store_d, dist_report.wkfid) == _lineage(
            store_t, threads_report.wkfid
        )

        # The wire actually batched and compressed.
        assert dist_report.batches_sent >= 1
        assert dist_report.avg_batch_fill > 1.0
        assert dist_report.wire_bytes_saved > 0
        assert dist_report.compression_ratio > 1.0

        # Journal dispatch events stay per-tuple under batching: one
        # dispatched event per (stage, key), each with a node hint.
        dispatched = [
            (e["stage"], e["tuple_key"])
            for e in store_d.journal_events(dist_report.wkfid)
            if e["event"] == "dispatched"
        ]
        assert len(dispatched) == 2 * len(KEYS)
        assert set(dispatched) == {
            (s, k) for s in (0, 1) for k in KEYS
        }

        # NODE_STATS round-trip carries the worker-side wire counters.
        assert set(node_stats) == {"batchparity-0", "batchparity-1"}
        for stats in node_stats.values():
            assert stats["batch_size"] == 4
            assert "result_batches_sent" in stats
            assert "bytes_saved_sent" in stats
            assert "frames_compressed_sent" in stats


class TestBatchedNodeLoss:
    def test_sigkill_mid_batch_reexecutes_only_uncompleted_members(self):
        wf = Workflow(
            "distbatchloss", [Activity("paced", Operator.MAP, fn=da.paced)]
        )
        relation = Relation(
            "in",
            [
                {
                    "key": f"k{i:02d}",
                    "receptor_id": RECEPTORS[i % len(RECEPTORS)],
                    "sleep_s": 0.25,
                }
                for i in range(16)
            ],
        )
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=4,
            backend="distributed",
            min_nodes=2,
            join_timeout=30.0,
            batch_size=4,
            batch_linger=0.02,
            compress_frames=True,
        )
        victim = _spawn_worker(engine.director_address, "bvictim")
        survivor = _spawn_worker(engine.director_address, "bsurvivor")
        box: dict = {}

        def _run():
            box["report"] = engine.run(
                wf, relation, context={"shared_maps": False}
            )

        t = threading.Thread(target=_run)
        t.start()
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if sum(engine._director.tuples_per_node.values()) >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("run never got in flight")
            victim.send_signal(signal.SIGKILL)
            t.join(timeout=120.0)
            assert not t.is_alive(), "run hung after node loss"
        finally:
            engine.shutdown()
            _reap([victim, survivor])

        report = box["report"]
        assert sorted(t["key"] for t in report.output) == sorted(
            f"k{i:02d}" for i in range(16)
        )
        assert report.counts.get("FINISHED", 0) == 16
        assert report.infra_retries >= 1
        assert report.nodes_lost == 1
        assert report.tuples_per_node.get("bsurvivor", 0) > 0

        # Only the *uncompleted* members of the victim's in-flight
        # batches re-executed: each infra retry is exactly one extra
        # activation attempt, so completed-before-kill tuples ran once.
        attempts = store.sql(
            "SELECT COUNT(*) AS n FROM hactivation t"
            " JOIN hactivity a ON t.actid = a.actid"
            " WHERE a.wkfid = ?",
            (report.wkfid,),
        )[0]["n"]
        assert attempts == 16 + report.infra_retries


class TestLateJoin:
    def test_node_joining_mid_run_takes_over_after_sole_node_dies(self):
        wf = Workflow(
            "distlate", [Activity("paced", Operator.MAP, fn=da.paced)]
        )
        relation = Relation(
            "in",
            [
                {
                    "key": f"k{i:02d}",
                    "receptor_id": RECEPTORS[i % len(RECEPTORS)],
                    "sleep_s": 0.25,
                }
                for i in range(12)
            ],
        )
        store = ProvenanceStore()
        engine = LocalEngine(
            store,
            workers=4,
            backend="distributed",
            min_nodes=1,
            join_timeout=60.0,
            batch_size=4,
            batch_linger=0.02,
            compress_frames=True,
        )
        early = _spawn_worker(engine.director_address, "early")
        late = None
        box: dict = {}

        def _run():
            box["report"] = engine.run(
                wf, relation, context={"shared_maps": False}
            )

        t = threading.Thread(target=_run)
        t.start()
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if sum(engine._director.tuples_per_node.values()) >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("run never got in flight")
            early.send_signal(signal.SIGKILL)
            # Wait for the loss to register — the backlog is now parked
            # (orphaned or pending resubmission) with zero live nodes.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if engine._director.nodes_lost >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("node loss never registered")
            late = _spawn_worker(engine.director_address, "late")
            t.join(timeout=120.0)
            assert not t.is_alive(), "run hung waiting for the late joiner"
        finally:
            engine.shutdown()
            _reap([w for w in (early, late) if w is not None])

        report = box["report"]
        assert sorted(t["key"] for t in report.output) == sorted(
            f"k{i:02d}" for i in range(12)
        )
        assert report.counts.get("FINISHED", 0) == 12
        assert report.nodes_joined == 2
        assert report.nodes_lost == 1
        # The late joiner finished everything the dead node left behind.
        assert report.tuples_per_node.get("late", 0) > 0
        events = {e["event"] for e in store.journal_events(report.wkfid)}
        assert {"node-joined", "node-lost"} <= events


class TestOrphanDrainWhiteBox:
    """Director-level: a lost node's unsent backlog (queued + batched-
    pending) becomes orphans when no survivor exists, and the next node
    to join drains it; only wire-inflight members fail onto infra."""

    def _fake_node(self, director, node_id, credits):
        import socket as socket_mod

        from repro.workflow.distributed import _NodeSession
        from repro.workflow.messaging import FrameConn

        a, b = socket_mod.socketpair()
        node = _NodeSession(
            rank=next(director._rank_seq),
            node_id=node_id,
            slots=2,
            conn=FrameConn(a),
        )
        node.ready = True
        node.credits = credits
        with director._lock:
            director._nodes[node.rank] = node
            director.nodes_joined += 1
        return node, FrameConn(b)

    def test_orphaned_backlog_drains_to_next_joining_node(self):
        from repro.workflow.affinity import RouterError
        from repro.workflow.distributed import Director
        from repro.workflow.messaging import MessageTag

        director = Director(
            min_nodes=1,
            join_timeout=5.0,
            batch_size=4,
            batch_linger=60.0,  # never auto-flush: the test drives it
        )
        peers = []
        try:
            doomed, peer_a = self._fake_node(director, "doomed", credits=5)
            peers.append(peer_a)
            futures = [
                director.submit(None, da.prep, {"key": f"wb{i}"})
                for i in range(7)
            ]
            # credits=5, batch_size=4: members 0-3 shipped as one
            # TASK_BATCH, member 4 pending in a partial batch, 5-6 queued.
            frame = peer_a.recv()
            assert frame.tag is MessageTag.TASK_BATCH
            members = frame.payload["tasks"]
            assert len(members) == 4
            assert len(doomed.pending) == 1
            assert len(doomed.queue) == 2

            # One batch member completes before the node dies.
            with director._lock:
                director._finish_entry_locked(
                    doomed,
                    {"task_id": members[0]["task_id"], "value": "done"},
                    failed=False,
                )
            assert futures[0].result(timeout=5.0) == "done"

            with director._lock:
                director._mark_lost_locked(doomed, "unit-test kill")

            # Wire-inflight uncompleted members fail as infra errors...
            for future in futures[1:4]:
                with pytest.raises(RouterError):
                    future.result(timeout=5.0)
            # ...while the never-sent backlog is orphaned, not failed.
            assert len(director._orphans) == 3
            assert all(not f.done() for f in futures[4:])
            assert director.nodes_lost == 1
            assert director.tuples_per_node == {"doomed": 1}

            late, peer_b = self._fake_node(director, "late", credits=6)
            peers.append(peer_b)
            with director._lock:
                director._flush_locked(late)
                # The whole orphan backlog was admitted to the new
                # node's batch; expire the linger window by hand.
                assert not director._orphans
                assert len(late.pending) == 3
                batch = late.pending[:]
                late.pending.clear()
                director._ship_locked(late, batch)
            frame = peer_b.recv()
            assert frame.tag is MessageTag.TASK_BATCH
            drained = frame.payload["tasks"]
            assert len(drained) == 3
            with director._lock:
                for entry in drained:
                    director._finish_entry_locked(
                        late,
                        {"task_id": entry["task_id"], "value": "late-done"},
                        failed=False,
                    )
            for future in futures[4:]:
                assert future.result(timeout=5.0) == "late-done"
            assert director.tuples_per_node["late"] == 3
        finally:
            with director._lock:
                for node in director._nodes.values():
                    node.stats_event.set()
            director.shutdown()
            for peer in peers:
                peer.close()
