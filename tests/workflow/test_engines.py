"""Integration tests for LocalEngine and SimulatedEngine."""

import pytest

from repro.cloud.cluster import VirtualCluster
from repro.cloud.failures import ActivityFailureModel
from repro.cloud.provider import CloudProvider
from repro.cloud.simclock import SimClock
from repro.provenance.queries import query1_activity_statistics
from repro.provenance.store import ActivationStatus, ProvenanceStore
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.adaptive import AdaptiveElasticityPolicy
from repro.workflow.engine import EngineError, LocalEngine, SimulatedEngine
from repro.workflow.extractor import JsonExtractor
from repro.workflow.fault import RetryPolicy, Watchdog
from repro.workflow.relation import Relation
from repro.workflow.scheduler import GreedyCostScheduler, RoundRobinScheduler


def pipeline_workflow() -> Workflow:
    return Workflow(
        "toy",
        [
            Activity(
                "double", Operator.MAP,
                fn=lambda t, c: [{"x": t["x"] * 2}], cost_fn=lambda t: 5.0,
            ),
            Activity(
                "fanout", Operator.SPLIT_MAP,
                fn=lambda t, c: [{"x": t["x"]}, {"x": t["x"] + 1}],
                cost_fn=lambda t: 2.0,
            ),
            Activity(
                "positive", Operator.FILTER,
                fn=lambda t, c: [t] if t["x"] > 2 else [], cost_fn=lambda t: 1.0,
            ),
            Activity(
                "sum", Operator.REDUCE,
                fn=lambda t, c: [
                    {"total": sum(u["x"] for u in t["__tuples__"])}
                ],
                cost_fn=lambda t: 3.0,
            ),
        ],
    )


def make_sim_engine(cores=4, **kw):
    clock = SimClock()
    cluster = VirtualCluster(CloudProvider(clock))
    cluster.scale_to(cores)
    return SimulatedEngine(ProvenanceStore(), cluster, **kw)


INPUT = Relation("in", [{"x": i} for i in range(5)])
EXPECTED_TOTAL = 42  # doubles fanned out, filtered > 2, summed


class TestLocalEngine:
    def test_dataflow_result(self):
        engine = LocalEngine(ProvenanceStore(), workers=3)
        report = engine.run(pipeline_workflow(), INPUT.copy())
        assert report.output[0]["total"] == EXPECTED_TOTAL
        assert report.succeeded

    def test_provenance_recorded(self):
        store = ProvenanceStore()
        report = LocalEngine(store, workers=2).run(pipeline_workflow(), INPUT.copy())
        stats = {s.tag: s for s in query1_activity_statistics(store, report.wkfid)}
        assert stats["double"].count == 5
        assert stats["sum"].count == 1

    def test_worker_validation(self):
        with pytest.raises(EngineError):
            LocalEngine(ProvenanceStore(), workers=0)

    def test_failure_retry(self):
        calls = {}

        def flaky(t, c):
            k = t["x"]
            calls[k] = calls.get(k, 0) + 1
            if calls[k] == 1:
                raise RuntimeError("transient")
            return [{"x": t["x"]}]

        wf = Workflow("w", [Activity("flaky", Operator.MAP, fn=flaky)])
        store = ProvenanceStore()
        report = LocalEngine(store, workers=1, retry=RetryPolicy(max_attempts=2)).run(
            wf, Relation("in", [{"x": 1}])
        )
        assert len(report.output) == 1
        assert report.retried == 1
        counts = store.counts_by_status(report.wkfid)
        assert counts == {"FAILED": 1, "FINISHED": 1}

    def test_failure_exhausts_retries(self):
        def broken(t, c):
            raise RuntimeError("permanent")

        wf = Workflow("w", [Activity("broken", Operator.MAP, fn=broken)])
        store = ProvenanceStore()
        report = LocalEngine(store, workers=1, retry=RetryPolicy(max_attempts=2)).run(
            wf, Relation("in", [{"x": 1}])
        )
        assert len(report.output) == 0
        assert not report.succeeded
        failed = store.failed_activations(report.wkfid)
        assert len(failed) == 2
        assert "permanent" in failed[0]["errormsg"]

    def test_looping_blocked_by_routine(self):
        wf = Workflow(
            "w",
            [
                Activity(
                    "prep", Operator.MAP,
                    fn=lambda t, c: [dict(t)],
                    looping_predicate=lambda t: t.get("hg", False),
                )
            ],
        )
        store = ProvenanceStore()
        engine = LocalEngine(store, workers=1, block_known_loopers=True)
        report = engine.run(wf, Relation("in", [{"hg": True}, {"hg": False}]))
        assert report.blocked == 1
        assert len(report.output) == 1

    def test_looping_watchdog_abort(self):
        wf = Workflow(
            "w",
            [
                Activity(
                    "prep", Operator.MAP,
                    fn=lambda t, c: [dict(t)],
                    cost_fn=lambda t: 10.0,
                    looping_predicate=lambda t: t.get("hg", False),
                )
            ],
        )
        store = ProvenanceStore()
        engine = LocalEngine(
            store, workers=1, block_known_loopers=False, watchdog=Watchdog(timeout=50)
        )
        report = engine.run(wf, Relation("in", [{"hg": True}]))
        assert report.aborted == 1
        rows = store.activations(report.wkfid, ActivationStatus.ABORTED)
        # Predicate-known loopers are aborted at decision time — the
        # record carries the real wall clock, not a fabricated
        # start + deadline; the unspent deadline lives in errormsg.
        assert rows[0]["endtime"] - rows[0]["starttime"] < 50
        assert "deadline 100.000s" in rows[0]["errormsg"]
        # A predicate abort is not a wall-clock timeout.
        assert report.timeouts == 0

    def test_files_and_extracts_recorded(self):
        def fn(t, c):
            return [
                {
                    "x": t["x"],
                    "_files": [("out.dlg", 123, "/root/exp/")],
                    "_extract_payload": '{"feb": -6.5}',
                }
            ]

        wf = Workflow(
            "w",
            [
                Activity(
                    "dock", Operator.MAP, fn=fn,
                    extractors=[JsonExtractor(keys=("feb",))],
                )
            ],
        )
        store = ProvenanceStore()
        report = LocalEngine(store, workers=1).run(wf, Relation("in", [{"x": 1}]))
        # Reserved fields stripped from the flowing tuple.
        assert set(report.output[0]) == {"x"}
        from repro.provenance.queries import query2_files

        files = query2_files(store, report.wkfid, ".dlg")
        assert files[0].fname == "out.dlg"
        extracts = store.extracts(report.wkfid, "feb")
        assert float(extracts[0]["value"]) == -6.5


class TestSimulatedEngine:
    def test_dataflow_matches_local(self):
        report = make_sim_engine().run(pipeline_workflow(), INPUT.copy())
        assert report.output[0]["total"] == EXPECTED_TOTAL

    def test_deterministic(self):
        a = make_sim_engine().run(pipeline_workflow(), INPUT.copy())
        b = make_sim_engine().run(pipeline_workflow(), INPUT.copy())
        assert a.tet_seconds == b.tet_seconds

    def test_more_cores_faster(self):
        big = Relation("in", [{"x": i} for i in range(64)])
        slow = make_sim_engine(cores=2, core_limit=2).run(pipeline_workflow(), big.copy())
        fast = make_sim_engine(cores=16).run(pipeline_workflow(), big.copy())
        assert fast.tet_seconds < slow.tet_seconds

    def test_core_limit_respected(self):
        limited = make_sim_engine(cores=8, core_limit=2).run(
            pipeline_workflow(), Relation("in", [{"x": i} for i in range(32)])
        )
        full = make_sim_engine(cores=8).run(
            pipeline_workflow(), Relation("in", [{"x": i} for i in range(32)])
        )
        assert limited.tet_seconds > full.tet_seconds

    def test_core_limit_validation(self):
        with pytest.raises(EngineError):
            make_sim_engine(cores=4, core_limit=0)

    def test_failure_injection_and_retry(self):
        engine = make_sim_engine(
            failure_model=ActivityFailureModel(rate=0.3, seed=7),
            retry=RetryPolicy(max_attempts=5),
        )
        report = engine.run(pipeline_workflow(), INPUT.copy())
        assert report.retried > 0
        assert report.output[0]["total"] == EXPECTED_TOTAL
        assert report.counts.get("FAILED", 0) == report.retried

    def test_failures_lengthen_tet(self):
        clean = make_sim_engine().run(pipeline_workflow(), INPUT.copy())
        faulty = make_sim_engine(
            failure_model=ActivityFailureModel(rate=0.4, seed=3),
            retry=RetryPolicy(max_attempts=6),
        ).run(pipeline_workflow(), INPUT.copy())
        assert faulty.tet_seconds > clean.tet_seconds

    def test_looping_blocked(self):
        wf = Workflow(
            "w",
            [
                Activity(
                    "prep", Operator.MAP, cost_fn=lambda t: 5.0,
                    looping_predicate=lambda t: t.get("hg", False),
                )
            ],
        )
        rel = Relation("in", [{"hg": True}, {"hg": False}])
        report = make_sim_engine().run(wf, rel)
        assert report.blocked == 1
        assert len(report.output) == 1

    def test_looping_watchdog(self):
        wf = Workflow(
            "w",
            [
                Activity(
                    "prep", Operator.MAP, cost_fn=lambda t: 5.0,
                    looping_predicate=lambda t: t.get("hg", False),
                )
            ],
        )
        rel = Relation("in", [{"hg": True}, {"hg": False}])
        engine = make_sim_engine(block_known_loopers=False, watchdog=Watchdog(timeout=100))
        report = engine.run(wf, rel)
        assert report.aborted == 1
        # The watchdog kill consumed at least the timeout of virtual time.
        assert report.tet_seconds >= 100

    def test_greedy_beats_round_robin_on_heterogeneous_load(self):
        # Mixed short/long activations on mixed-speed cores: greedy places
        # long jobs on fast cores and should win.
        wf = Workflow(
            "w",
            [
                Activity(
                    "work", Operator.MAP,
                    cost_fn=lambda t: 200.0 if t["x"] % 5 == 0 else 5.0,
                )
            ],
        )
        rel = Relation("in", [{"x": i} for i in range(40)])
        greedy = make_sim_engine(cores=12, scheduler=GreedyCostScheduler()).run(
            wf, rel.copy()
        )
        rr = make_sim_engine(cores=12, scheduler=RoundRobinScheduler()).run(
            wf, rel.copy()
        )
        assert greedy.tet_seconds <= rr.tet_seconds * 1.05

    def test_elasticity_scales_up(self):
        wf = Workflow("w", [Activity("work", Operator.MAP, cost_fn=lambda t: 100.0)])
        rel = Relation("in", [{"x": i} for i in range(64)])
        clock = SimClock()
        cluster = VirtualCluster(CloudProvider(clock))
        cluster.scale_to(4)
        engine = SimulatedEngine(
            ProvenanceStore(), cluster,
            elasticity=AdaptiveElasticityPolicy(min_cores=4, max_cores=64, drain_horizon=100.0),
        )
        report = engine.run(wf, rel)
        assert report.peak_cores > 4

    def test_provenance_has_vm_assignments(self):
        store = ProvenanceStore()
        clock = SimClock()
        cluster = VirtualCluster(CloudProvider(clock))
        cluster.scale_to(4)
        engine = SimulatedEngine(store, cluster)
        report = engine.run(pipeline_workflow(), INPUT.copy())
        rows = store.activations(report.wkfid, ActivationStatus.FINISHED)
        assert all(r["vm_id"].startswith("i-") for r in rows)

    def test_cost_reported(self):
        report = make_sim_engine().run(pipeline_workflow(), INPUT.copy())
        assert report.cost_usd > 0

    def test_elasticity_releases_idle_vms(self):
        wf = Workflow("w", [Activity("work", Operator.MAP, cost_fn=lambda t: 50.0)])
        rel = Relation("in", [{"x": i} for i in range(48)])
        clock = SimClock()
        cluster = VirtualCluster(CloudProvider(clock))
        cluster.scale_to(32)
        engine = SimulatedEngine(
            ProvenanceStore(), cluster,
            elasticity=AdaptiveElasticityPolicy(min_cores=4, max_cores=32, drain_horizon=120.0),
        )
        report = engine.run(wf, rel)
        # As the backlog drained, idle VMs were terminated.
        assert cluster.total_cores < 32
        assert len(report.output) == 48


class TestBufferedProvenanceParity:
    """The buffered provenance path must change nothing observable."""

    def test_buffered_store_matches_write_through(self):
        from repro.provenance.queries import query2_files

        outputs, tables, q1, q2 = {}, {}, {}, {}
        for name, store in (
            ("direct", ProvenanceStore()),  # buffer_size=1: legacy behavior
            ("buffered", ProvenanceStore(buffer_size=512, flush_interval=60.0)),
        ):
            report = LocalEngine(store, workers=2).run(
                pipeline_workflow(), INPUT.copy()
            )
            # Identical synthetic artifact on each run's first activation
            # so Query 2 has something to compare.
            tid = store.sql("SELECT MIN(taskid) AS t FROM hactivation")[0]["t"]
            store.record_file(tid, "042_1AEC.dlg", 64, "/exp/")
            store.flush()
            outputs[name] = report.output[0]
            tables[name] = {
                table: store.sql(f"SELECT COUNT(*) AS n FROM {table}")[0]["n"]
                for table in ("hworkflow", "hactivity", "hactivation", "hfile")
            }
            q1[name] = {
                s.tag: s.count
                for s in query1_activity_statistics(store, report.wkfid)
            }
            q2[name] = [
                (f.activity_tag, f.fname, f.fsize, f.fdir)
                for f in query2_files(store, report.wkfid, ".dlg")
            ]
            store.close()

        assert outputs["buffered"] == outputs["direct"]
        assert tables["buffered"] == tables["direct"]
        assert q1["buffered"] == q1["direct"]
        assert q2["buffered"] == q2["direct"]
        assert q2["direct"]  # the comparison was not vacuous
