"""Unit + property tests for rotatable bonds and the torsion tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.atom import Atom
from repro.chem.generate import generate_ligand
from repro.chem.geometry import rmsd
from repro.chem.molecule import Molecule
from repro.chem.torsions import TorsionTree, find_rotatable_bonds


def make_butane() -> Molecule:
    """C1-C2-C3-C4 chain: one rotatable bond (C2-C3)."""
    m = Molecule(name="BUT")
    coords = [[0, 0, 0], [1.5, 0, 0], [2.3, 1.3, 0], [3.8, 1.3, 0]]
    for i, c in enumerate(coords):
        m.add_atom(Atom(i + 1, f"C{i + 1}", "C", np.array(c, dtype=float)))
    m.add_bond(0, 1)
    m.add_bond(1, 2)
    m.add_bond(2, 3)
    return m


def make_benzene() -> Molecule:
    m = Molecule(name="BNZ")
    for k in range(6):
        theta = 2 * np.pi * k / 6
        m.add_atom(
            Atom(
                k + 1,
                f"C{k + 1}",
                "C",
                np.array([1.39 * np.cos(theta), 1.39 * np.sin(theta), 0.0]),
                aromatic=True,
            )
        )
    for k in range(6):
        m.add_bond(k, (k + 1) % 6, aromatic=True)
    return m


def make_acetamide() -> Molecule:
    """CH3-C(=O)-NH2: the C-N amide bond must not be rotatable."""
    m = Molecule(name="ACM")
    m.add_atom(Atom(1, "C1", "C", [0.0, 0, 0]))  # methyl C
    m.add_atom(Atom(2, "C2", "C", [1.5, 0, 0]))  # carbonyl C
    m.add_atom(Atom(3, "O1", "O", [2.1, 1.1, 0]))
    m.add_atom(Atom(4, "N1", "N", [2.2, -1.2, 0]))
    m.add_atom(Atom(5, "C3", "C", [3.6, -1.3, 0]))  # N-methyl to make both ends non-terminal
    m.add_bond(0, 1)
    m.add_bond(1, 2, order=2)
    m.add_bond(1, 3)
    m.add_bond(3, 4)
    return m


class TestFindRotatableBonds:
    def test_butane_central_bond(self):
        assert find_rotatable_bonds(make_butane()) == [(1, 2)]

    def test_benzene_has_none(self):
        assert find_rotatable_bonds(make_benzene()) == []

    def test_amide_excluded(self):
        rot = find_rotatable_bonds(make_acetamide())
        assert (1, 3) not in rot

    def test_double_bond_excluded(self):
        m = make_butane()
        m.bonds[1] = type(m.bonds[1])(1, 2, 2, False)
        assert find_rotatable_bonds(m) == []

    def test_terminal_bond_excluded(self):
        m = Molecule()
        m.add_atom(Atom(1, "C1", "C", [0, 0, 0]))
        m.add_atom(Atom(2, "C2", "C", [1.5, 0, 0]))
        m.add_bond(0, 1)
        assert find_rotatable_bonds(m) == []

    def test_ring_bond_excluded(self):
        # cyclohexane with a tail: only the tail bond attaching is terminal,
        # so nothing rotates.
        m = make_benzene()
        for b in list(m.bonds):
            m.bonds[m.bonds.index(b)] = type(b)(b.i, b.j, 1, False)
        for a in m.atoms:
            a.aromatic = False
        m._adjacency = None
        assert find_rotatable_bonds(m) == []


class TestTorsionTree:
    def test_empty_molecule_raises(self):
        with pytest.raises(ValueError):
            TorsionTree(Molecule())

    def test_butane_tree_one_torsion(self):
        tree = TorsionTree(make_butane())
        assert tree.n_torsions == 1
        assert tree.dof == 7

    def test_identity_conformation_reproduces_input(self):
        tree = TorsionTree(make_butane())
        t, q, tor = tree.identity_conformation()
        coords = tree.pose(t, q, tor)
        assert np.allclose(coords, tree.reference, atol=1e-10)

    def test_translation_moves_everything(self):
        tree = TorsionTree(make_butane())
        t, q, tor = tree.identity_conformation()
        coords = tree.pose(t + [1.0, 2.0, 3.0], q, tor)
        assert np.allclose(coords, tree.reference + [1.0, 2.0, 3.0], atol=1e-10)

    def test_torsion_rotates_only_distal_atoms(self):
        tree = TorsionTree(make_butane())
        t, q, tor = tree.identity_conformation()
        coords = tree.pose(t, q, tor + np.pi / 3)
        moved = tree.branches[0].moved
        fixed = sorted(set(range(4)) - set(moved.tolist()))
        assert np.allclose(coords[fixed], tree.reference[fixed], atol=1e-9)
        assert not np.allclose(coords[moved], tree.reference[moved])

    def test_torsion_preserves_bond_lengths(self):
        m = make_butane()
        tree = TorsionTree(m)
        t, q, tor = tree.identity_conformation()
        coords = tree.pose(t, q, tor + 1.0)
        for b in m.bonds:
            before = np.linalg.norm(tree.reference[b.i] - tree.reference[b.j])
            after = np.linalg.norm(coords[b.i] - coords[b.j])
            assert after == pytest.approx(before, abs=1e-9)

    def test_full_turn_is_identity(self):
        tree = TorsionTree(make_butane())
        t, q, tor = tree.identity_conformation()
        coords = tree.pose(t, q, tor + 2 * np.pi)
        assert rmsd(coords, tree.reference) == pytest.approx(0.0, abs=1e-9)

    def test_wrong_torsion_count_raises(self):
        tree = TorsionTree(make_butane())
        with pytest.raises(ValueError, match="torsion"):
            tree.pose(np.zeros(3), [1, 0, 0, 0], np.zeros(5))

    def test_pose_does_not_mutate_molecule(self):
        m = make_butane()
        snapshot = m.coords
        tree = TorsionTree(m)
        tree.pose([5.0, 0, 0], [1, 0, 0, 0], np.array([2.0]))
        assert np.allclose(m.coords, snapshot)

    def test_pdbqt_records_cover_all_atoms(self):
        tree = TorsionTree(make_butane())
        records = tree.to_pdbqt_records()
        atoms = [r[1] for r in records if r[0] == "ATOM"]
        assert sorted(atoms) == [0, 1, 2, 3]
        kinds = [r[0] for r in records]
        assert kinds[0] == "ROOT"
        assert kinds.count("BRANCH") == kinds.count("ENDBRANCH") == 1

    @given(st.sampled_from(["042", "074", "0D6", "0E6", "1EV", "APD", "93N"]))
    @settings(max_examples=7, deadline=None)
    def test_property_generated_ligand_pose_invariants(self, ligand_id):
        lig = generate_ligand(ligand_id)
        tree = TorsionTree(lig)
        rng = np.random.default_rng(7)
        q = rng.normal(size=4)
        tor = rng.uniform(-np.pi, np.pi, size=tree.n_torsions)
        coords = tree.pose(rng.normal(size=3) * 3, q, tor)
        # Shape preserved and all bond lengths intact within each branch.
        assert coords.shape == tree.reference.shape
        for b in lig.bonds:
            before = np.linalg.norm(tree.reference[b.i] - tree.reference[b.j])
            after = np.linalg.norm(coords[b.i] - coords[b.j])
            assert after == pytest.approx(before, abs=1e-6)
