"""Unit tests for Atom/Bond/Molecule."""

import numpy as np
import pytest

from repro.chem.atom import Atom
from repro.chem.molecule import Bond, Molecule


def make_water() -> Molecule:
    m = Molecule(name="HOH")
    m.add_atom(Atom(1, "O", "O", np.array([0.0, 0.0, 0.0])))
    m.add_atom(Atom(2, "H1", "H", np.array([0.96, 0.0, 0.0])))
    m.add_atom(Atom(3, "H2", "H", np.array([-0.24, 0.93, 0.0])))
    m.add_bond(0, 1)
    m.add_bond(0, 2)
    return m


class TestAtom:
    def test_coords_coerced_to_float64(self):
        a = Atom(1, "C1", "C", [1, 2, 3])
        assert a.coords.dtype == np.float64

    def test_bad_coords_shape_raises(self):
        with pytest.raises(ValueError, match="shape"):
            Atom(1, "C1", "C", [1, 2])

    def test_unknown_element_raises(self):
        with pytest.raises(KeyError):
            Atom(1, "Q1", "Q", [0, 0, 0])

    def test_element_normalized(self):
        a = Atom(1, "ZN", "zn", [0, 0, 0])
        assert a.element == "ZN"
        assert a.is_metal

    def test_distance(self):
        a = Atom(1, "C1", "C", [0, 0, 0])
        b = Atom(2, "C2", "C", [3, 4, 0])
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_copy_is_independent(self):
        a = Atom(1, "C1", "C", [0, 0, 0], metadata={"k": 1})
        c = a.copy()
        c.coords[0] = 9.0
        c.metadata["k"] = 2
        assert a.coords[0] == 0.0
        assert a.metadata["k"] == 1

    def test_hydrogen_flags(self):
        h = Atom(1, "H1", "H", [0, 0, 0])
        assert h.is_hydrogen and not h.is_heavy


class TestBond:
    def test_canonical_ordering(self):
        assert Bond(3, 1) == Bond(1, 3)

    def test_self_bond_rejected(self):
        with pytest.raises(ValueError):
            Bond(2, 2)

    def test_other(self):
        b = Bond(1, 4)
        assert b.other(1) == 4
        assert b.other(4) == 1
        with pytest.raises(ValueError):
            b.other(2)


class TestMolecule:
    def test_len_iter_getitem(self):
        m = make_water()
        assert len(m) == 3
        assert [a.name for a in m] == ["O", "H1", "H2"]
        assert m[0].element == "O"

    def test_add_bond_out_of_range(self):
        m = make_water()
        with pytest.raises(IndexError):
            m.add_bond(0, 7)

    def test_coords_roundtrip(self):
        m = make_water()
        c = m.coords
        c2 = c + 1.0
        m.set_coords(c2)
        assert np.allclose(m.coords, c + 1.0)

    def test_set_coords_shape_check(self):
        m = make_water()
        with pytest.raises(ValueError):
            m.set_coords(np.zeros((2, 3)))

    def test_centroid_translate(self):
        m = make_water()
        c0 = m.centroid()
        m.translate([1.0, 0.0, 0.0])
        assert np.allclose(m.centroid(), c0 + [1.0, 0.0, 0.0])

    def test_empty_centroid_raises(self):
        with pytest.raises(ValueError):
            Molecule().centroid()

    def test_bounding_box_padding(self):
        m = make_water()
        lo, hi = m.bounding_box(padding=2.0)
        assert np.all(lo <= m.coords.min(axis=0) - 1.999)
        assert np.all(hi >= m.coords.max(axis=0) + 1.999)

    def test_formula_hill_system(self):
        m = make_water()
        assert m.formula == "H2O"

    def test_molecular_weight(self):
        m = make_water()
        assert m.molecular_weight == pytest.approx(18.015, abs=0.01)

    def test_adjacency_and_degree(self):
        m = make_water()
        assert m.neighbors(0) == {1, 2}
        assert m.degree(0) == 2
        assert m.degree(1) == 1

    def test_has_bond(self):
        m = make_water()
        assert m.has_bond(0, 1)
        assert not m.has_bond(1, 2)

    def test_contains_element(self):
        m = make_water()
        assert m.contains_element("o")
        assert not m.contains_element("HG")

    def test_heavy_atoms(self):
        assert make_water().heavy_atoms() == [0]

    def test_connected_components_single(self):
        m = make_water()
        assert m.connected_components() == [[0, 1, 2]]

    def test_connected_components_disjoint(self):
        m = make_water()
        m.add_atom(Atom(4, "C9", "C", [10, 10, 10]))
        comps = m.connected_components()
        assert sorted(map(len, comps)) == [1, 3]

    def test_copy_independent(self):
        m = make_water()
        m2 = m.copy()
        m2.atoms[0].coords[0] = 99.0
        m2.add_bond(1, 2)
        assert m.atoms[0].coords[0] == 0.0
        assert len(m.bonds) == 2

    def test_renumber(self):
        m = make_water()
        m.atoms[0].serial = 42
        m.renumber()
        assert [a.serial for a in m.atoms] == [1, 2, 3]

    def test_residues_grouping(self):
        m = make_water()
        m.atoms[2].residue_seq = 2
        groups = m.residues()
        assert groups[("A", 1)] == [0, 1]
        assert groups[("A", 2)] == [2]


class TestBondPerception:
    def test_perceives_water_bonds(self):
        m = make_water()
        m.bonds.clear()
        m._adjacency = None
        added = m.perceive_bonds()
        assert added == 2
        assert m.has_bond(0, 1) and m.has_bond(0, 2)

    def test_does_not_duplicate_existing(self):
        m = make_water()
        assert m.perceive_bonds() == 0
        assert len(m.bonds) == 2

    def test_distant_atoms_not_bonded(self):
        m = Molecule()
        m.add_atom(Atom(1, "C1", "C", [0, 0, 0]))
        m.add_atom(Atom(2, "C2", "C", [5, 0, 0]))
        assert m.perceive_bonds() == 0

    def test_overlapping_atoms_not_bonded(self):
        m = Molecule()
        m.add_atom(Atom(1, "C1", "C", [0, 0, 0]))
        m.add_atom(Atom(2, "C2", "C", [0.1, 0, 0]))
        assert m.perceive_bonds() == 0

    def test_radius_of_gyration_positive(self):
        assert make_water().radius_of_gyration() > 0
