"""Unit + property tests for geometry primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.chem.geometry import (
    apply_rotation,
    centroid,
    dihedral_angle,
    kabsch_align,
    quaternion_to_matrix,
    random_rotation_matrix,
    random_unit_quaternion,
    rmsd,
    rotation_about_axis,
    symmetric_rmsd,
)

coords_strategy = arrays(
    np.float64,
    st.tuples(st.integers(2, 12), st.just(3)),
    elements=st.floats(-50, 50, allow_nan=False),
)


class TestCentroid:
    def test_simple(self):
        c = centroid(np.array([[0.0, 0, 0], [2.0, 0, 0]]))
        assert np.allclose(c, [1, 0, 0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            centroid(np.zeros((0, 3)))

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            centroid(np.zeros((3, 2)))


class TestRotations:
    def test_rotation_about_z_quarter_turn(self):
        R = rotation_about_axis([0, 0, 1], np.pi / 2)
        assert np.allclose(R @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_zero_axis_raises(self):
        with pytest.raises(ValueError):
            rotation_about_axis([0, 0, 0], 1.0)

    def test_rotation_matrices_are_orthonormal(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            R = random_rotation_matrix(rng)
            assert np.allclose(R @ R.T, np.eye(3), atol=1e-10)
            assert np.linalg.det(R) == pytest.approx(1.0)

    def test_identity_quaternion(self):
        R = quaternion_to_matrix(np.array([1.0, 0, 0, 0]))
        assert np.allclose(R, np.eye(3))

    def test_zero_quaternion_raises(self):
        with pytest.raises(ValueError):
            quaternion_to_matrix(np.zeros(4))

    def test_quaternion_shape_check(self):
        with pytest.raises(ValueError):
            quaternion_to_matrix(np.zeros(3))

    def test_unit_quaternion_has_unit_norm(self):
        rng = np.random.default_rng(1)
        q = random_unit_quaternion(rng)
        assert np.linalg.norm(q) == pytest.approx(1.0)

    def test_apply_rotation_preserves_centroid(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(size=(10, 3))
        R = random_rotation_matrix(rng)
        rotated = apply_rotation(pts, R)
        assert np.allclose(centroid(rotated), centroid(pts), atol=1e-10)


class TestRMSD:
    def test_identical_is_zero(self):
        pts = np.arange(12.0).reshape(4, 3)
        assert rmsd(pts, pts) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 3))
        b = np.array([[1.0, 0, 0], [1.0, 0, 0]])
        assert rmsd(a, b) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            rmsd(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            rmsd(np.zeros((0, 3)), np.zeros((0, 3)))

    def test_symmetric_rmsd_permutation_invariant(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(8, 3))
        perm = rng.permutation(8)
        assert symmetric_rmsd(a, a[perm]) == pytest.approx(0.0, abs=1e-10)

    def test_symmetric_rmsd_is_symmetric(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(7, 3))
        assert symmetric_rmsd(a, b) == pytest.approx(symmetric_rmsd(b, a))

    @given(coords_strategy)
    @settings(max_examples=30, deadline=None)
    def test_property_rmsd_nonnegative(self, pts):
        shifted = pts + 1.0
        assert rmsd(pts, shifted) >= 0

    @given(coords_strategy)
    @settings(max_examples=30, deadline=None)
    def test_property_translation_rmsd(self, pts):
        # Rigid translation by d gives RMSD exactly d.
        shifted = pts + np.array([3.0, 4.0, 0.0])
        assert rmsd(pts, shifted) == pytest.approx(5.0, rel=1e-9)


class TestKabsch:
    def test_alignment_recovers_rotation(self):
        rng = np.random.default_rng(5)
        pts = rng.normal(size=(10, 3))
        R = random_rotation_matrix(rng)
        rotated = pts @ R.T + np.array([1.0, -2.0, 3.0])
        aligned, r = kabsch_align(rotated, pts)
        assert r == pytest.approx(0.0, abs=1e-8)
        assert np.allclose(aligned, pts, atol=1e-8)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            kabsch_align(np.zeros((2, 3)), np.zeros((3, 3)))

    @given(coords_strategy)
    @settings(max_examples=25, deadline=None)
    def test_property_kabsch_never_increases_rmsd(self, pts):
        rng = np.random.default_rng(int(abs(pts).sum() * 1000) % 2**31)
        R = random_rotation_matrix(rng)
        moved = pts @ R.T + 2.0
        _, aligned_rmsd = kabsch_align(moved, pts)
        assert aligned_rmsd <= rmsd(moved, pts) + 1e-9


class TestDihedral:
    def test_planar_cis_is_zero(self):
        angle = dihedral_angle([1, 1, 0], [1, 0, 0], [0, 0, 0], [0, 1, 0])
        assert angle == pytest.approx(0.0, abs=1e-10)

    def test_planar_trans_is_pi(self):
        angle = dihedral_angle([1, 1, 0], [1, 0, 0], [0, 0, 0], [0, -1, 0])
        assert abs(angle) == pytest.approx(np.pi, abs=1e-10)

    def test_right_angle(self):
        angle = dihedral_angle([1, 1, 0], [1, 0, 0], [0, 0, 0], [0, 0, 1])
        assert abs(angle) == pytest.approx(np.pi / 2, abs=1e-10)
