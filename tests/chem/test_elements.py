"""Unit tests for element data and AutoDock atom typing."""

import pytest

from repro.chem.elements import (
    AUTODOCK_TYPES,
    ELEMENTS,
    autodock_type_for,
    element_info,
)


class TestElementInfo:
    def test_lookup_is_case_insensitive(self):
        assert element_info("c").symbol == "C"
        assert element_info(" Zn ").symbol == "ZN"

    def test_unknown_element_raises_keyerror(self):
        with pytest.raises(KeyError, match="XX"):
            element_info("XX")

    def test_carbon_values(self):
        c = element_info("C")
        assert c.atomic_number == 6
        assert c.mass == pytest.approx(12.011)
        assert not c.is_metal

    def test_mercury_is_metal(self):
        assert element_info("HG").is_metal

    def test_all_elements_have_positive_radii(self):
        for e in ELEMENTS.values():
            assert e.vdw_radius > 0
            assert e.covalent_radius > 0

    def test_vdw_radius_exceeds_covalent(self):
        for e in ELEMENTS.values():
            assert e.vdw_radius > e.covalent_radius


class TestAutoDockTypes:
    def test_every_type_maps_to_known_element(self):
        for t in AUTODOCK_TYPES.values():
            assert t.element in ELEMENTS

    def test_donor_and_acceptor_flags(self):
        assert AUTODOCK_TYPES["HD"].is_donor
        assert not AUTODOCK_TYPES["HD"].is_acceptor
        assert AUTODOCK_TYPES["OA"].is_acceptor
        assert AUTODOCK_TYPES["NA"].is_acceptor
        assert not AUTODOCK_TYPES["C"].is_donor

    def test_hydrophobic_classification(self):
        assert AUTODOCK_TYPES["C"].is_hydrophobic
        assert AUTODOCK_TYPES["A"].is_hydrophobic
        assert not AUTODOCK_TYPES["OA"].is_hydrophobic

    def test_rii_positive_and_reasonable(self):
        for t in AUTODOCK_TYPES.values():
            assert 1.0 < t.rii < 5.0

    def test_epsii_positive(self):
        for t in AUTODOCK_TYPES.values():
            assert t.epsii > 0


class TestAutodockTypeFor:
    def test_aromatic_carbon_is_A(self):
        assert autodock_type_for("C", aromatic=True) == "A"

    def test_aliphatic_carbon_is_C(self):
        assert autodock_type_for("C") == "C"

    def test_polar_hydrogen_is_HD(self):
        assert autodock_type_for("H", h_bond_donor_neighbor=True) == "HD"
        assert autodock_type_for("H") == "H"

    def test_oxygen_is_acceptor(self):
        assert autodock_type_for("O") == "OA"

    def test_nitrogen_acceptor_flag(self):
        assert autodock_type_for("N", h_bond_acceptor=True) == "NA"
        assert autodock_type_for("N") == "N"

    def test_sulfur_defaults_to_SA(self):
        assert autodock_type_for("S") == "SA"

    def test_metal_falls_through_to_table(self):
        assert autodock_type_for("ZN") == "Zn"
        assert autodock_type_for("HG") == "Hg"

    def test_unknown_element_raises(self):
        with pytest.raises(KeyError):
            autodock_type_for("K")  # deliberately unparameterized
