"""Unit + property tests for Gasteiger charge assignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.atom import Atom
from repro.chem.charges import assign_gasteiger_charges, total_charge
from repro.chem.generate import generate_ligand
from repro.chem.molecule import Molecule


def make_methanol() -> Molecule:
    m = Molecule(name="MEOH")
    m.add_atom(Atom(1, "C1", "C", [0.0, 0.0, 0.0]))
    m.add_atom(Atom(2, "O1", "O", [1.43, 0.0, 0.0]))
    m.add_atom(Atom(3, "H1", "H", [1.8, 0.9, 0.0]))
    m.add_bond(0, 1)
    m.add_bond(1, 2)
    return m


class TestGasteiger:
    def test_oxygen_negative_carbon_positive(self):
        m = make_methanol()
        q = assign_gasteiger_charges(m)
        assert q[1] < 0  # oxygen pulls density
        assert q[0] > 0  # carbon loses it
        assert q[2] > 0  # hydroxyl hydrogen is positive

    def test_charges_written_to_atoms(self):
        m = make_methanol()
        q = assign_gasteiger_charges(m)
        assert m.atoms[1].charge == pytest.approx(q[1])

    def test_neutral_molecule_conserves_charge(self):
        m = make_methanol()
        assign_gasteiger_charges(m)
        assert total_charge(m) == pytest.approx(0.0, abs=1e-9)

    def test_empty_molecule(self):
        q = assign_gasteiger_charges(Molecule())
        assert q.shape == (0,)

    def test_isolated_atom_stays_neutral(self):
        m = Molecule()
        m.add_atom(Atom(1, "C1", "C", [0, 0, 0]))
        q = assign_gasteiger_charges(m)
        assert q[0] == 0.0

    def test_metal_gets_formal_charge(self):
        m = Molecule()
        m.add_atom(Atom(1, "ZN", "ZN", [0, 0, 0]))
        q = assign_gasteiger_charges(m)
        assert q[0] == pytest.approx(2.0)

    def test_mercury_fixed_charge(self):
        m = Molecule()
        m.add_atom(Atom(1, "HG", "HG", [0, 0, 0]))
        assert assign_gasteiger_charges(m)[0] == pytest.approx(2.0)

    def test_more_iterations_converges(self):
        m1, m2 = make_methanol(), make_methanol()
        q6 = assign_gasteiger_charges(m1, iterations=6)
        q12 = assign_gasteiger_charges(m2, iterations=12)
        # Damping is geometric: 12 iterations barely move vs 6.
        assert np.allclose(q6, q12, atol=0.05)

    def test_charges_bounded(self):
        m = make_methanol()
        q = assign_gasteiger_charges(m)
        assert np.all(np.abs(q) < 1.0)

    @given(st.sampled_from(["042", "074", "0D6", "0E6", "ACE", "ALD", "3FC"]))
    @settings(max_examples=7, deadline=None)
    def test_property_generated_ligands_conserve_charge(self, ligand_id):
        lig = generate_ligand(ligand_id)
        # Generated ligands are metal-free, so PEOE conserves total charge.
        assert total_charge(lig) == pytest.approx(0.0, abs=1e-6)

    def test_total_charge_length_check(self):
        from repro.chem.charges import mol_charges_to_atoms

        with pytest.raises(ValueError):
            mol_charges_to_atoms(make_methanol(), np.zeros(5))
