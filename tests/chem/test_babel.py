"""Unit tests for the Babel-equivalent converter."""

import numpy as np
import pytest

from repro.chem.atom import Atom
from repro.chem.babel import (
    UnsupportedFormatError,
    convert_file,
    convert_molecule,
    guess_format,
    read_molecule,
    write_molecule,
)
from repro.chem.molecule import Molecule


def make_mol() -> Molecule:
    m = Molecule(name="LIG")
    m.add_atom(Atom(1, "C1", "C", [0.0, 0.0, 0.0]))
    m.add_atom(Atom(2, "O1", "O", [1.4, 0.0, 0.0]))
    m.add_bond(0, 1)
    return m


class TestGuessFormat:
    @pytest.mark.parametrize(
        "name,fmt",
        [("x.sdf", "sdf"), ("x.mol2", "mol2"), ("x.pdb", "pdb"), ("x.PDBQT", "pdbqt")],
    )
    def test_known_extensions(self, name, fmt):
        assert guess_format(name) == fmt

    def test_unknown_extension_raises(self):
        with pytest.raises(UnsupportedFormatError):
            guess_format("x.docx")


class TestConvert:
    def test_sdf_to_mol2_file(self, tmp_path):
        src = tmp_path / "lig.sdf"
        dst = tmp_path / "lig.mol2"
        write_molecule(make_mol(), src)
        mol = convert_file(src, dst)
        assert dst.exists()
        assert "@<TRIPOS>MOLECULE" in dst.read_text()
        assert len(mol) == 2

    def test_roundtrip_preserves_coords(self, tmp_path):
        src = tmp_path / "lig.sdf"
        write_molecule(make_mol(), src)
        for fmt in ("mol2", "pdb"):
            dst = tmp_path / f"lig.{fmt}"
            convert_file(src, dst)
            back = read_molecule(dst)
            assert np.allclose(back.coords, make_mol().coords, atol=1e-3)

    def test_convert_molecule_text(self):
        text = convert_molecule(make_mol(), "mol2")
        assert text.startswith("@<TRIPOS>MOLECULE")

    def test_convert_molecule_bad_format(self):
        with pytest.raises(UnsupportedFormatError):
            convert_molecule(make_mol(), "smiles")

    def test_explicit_format_override(self, tmp_path):
        path = tmp_path / "weird.dat"
        write_molecule(make_mol(), path, fmt="sdf")
        mol = read_molecule(path, fmt="sdf")
        assert len(mol) == 2

    def test_read_missing_parser(self, tmp_path):
        with pytest.raises(UnsupportedFormatError):
            read_molecule(tmp_path / "x.xyz", fmt="xyz")
