"""Unit + property tests for the synthetic structure generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.generate import (
    LigandGenerator,
    ReceptorGenerator,
    generate_ligand,
    generate_receptor,
    receptor_contains_mercury,
    receptor_size_class,
)


class TestDeterminism:
    def test_receptor_deterministic(self):
        a = generate_receptor("1AEC")
        b = generate_receptor("1AEC")
        assert len(a) == len(b)
        assert np.allclose(a.coords, b.coords)

    def test_ligand_deterministic(self):
        a = generate_ligand("0E6")
        b = generate_ligand("0E6")
        assert len(a) == len(b)
        assert np.allclose(a.coords, b.coords)
        assert [x.charge for x in a.atoms] == [x.charge for x in b.atoms]

    def test_different_ids_differ(self):
        a = generate_receptor("1AEC")
        b = generate_receptor("2HHN")
        assert len(a) != len(b) or not np.allclose(
            a.coords[: min(len(a), len(b))], b.coords[: min(len(a), len(b))]
        )

    def test_size_class_deterministic(self):
        assert receptor_size_class("1AEC") == receptor_size_class("1AEC")

    def test_mercury_flag_deterministic(self):
        assert receptor_contains_mercury("1AEC") == receptor_contains_mercury("1AEC")


class TestReceptor:
    def test_has_pocket_metadata(self):
        r = generate_receptor("2HHN")
        assert "pocket_center" in r.metadata
        assert r.metadata["pocket_radius"] > 0
        assert r.metadata["size_class"] in ("small", "large")

    def test_pocket_is_cavity(self):
        """No receptor atom sits deep inside the pocket sphere."""
        r = generate_receptor("1HUC")
        center = np.array(r.metadata["pocket_center"])
        radius = r.metadata["pocket_radius"]
        dists = np.linalg.norm(r.coords - center, axis=1)
        assert dists.min() > radius * 0.5

    def test_size_classes_partition_receptor_counts(self):
        small = generate_receptor("SMALL-TEST-aaa")
        # Size class drives residue count: large receptors have more atoms
        # than small ones on average. Check via metadata consistency.
        assert small.metadata["n_residues"] >= 4

    def test_large_receptors_bigger_than_small(self):
        ids = [f"TST{i}" for i in range(40)]
        small_sizes = [
            len(generate_receptor(i)) for i in ids if receptor_size_class(i) == "small"
        ]
        large_sizes = [
            len(generate_receptor(i)) for i in ids if receptor_size_class(i) == "large"
        ]
        assert small_sizes and large_sizes
        assert np.mean(large_sizes) > np.mean(small_sizes)

    def test_mercury_rate_near_five_percent(self):
        flags = [receptor_contains_mercury(f"R{i}") for i in range(400)]
        rate = sum(flags) / len(flags)
        assert 0.01 < rate < 0.12

    def test_mercury_receptor_contains_hg_atom(self):
        for i in range(200):
            pid = f"R{i}"
            if receptor_contains_mercury(pid):
                assert generate_receptor(pid).contains_element("HG")
                return
        pytest.fail("no mercury receptor found in 200 draws")

    def test_protein_backbone_atoms_present(self):
        r = generate_receptor("1AEC")
        names = {a.name for a in r.atoms}
        assert {"N", "CA", "C", "O"} <= names

    def test_invalid_residue_range_raises(self):
        with pytest.raises(ValueError):
            ReceptorGenerator(n_residues_range=(1, 2))


class TestLigand:
    def test_heavy_atom_range_respected(self):
        gen = LigandGenerator(heavy_atoms_range=(8, 12))
        for lid in ("a", "b", "c"):
            lig = gen.generate(lid)
            n_heavy = sum(1 for a in lig.atoms if a.is_heavy)
            assert 8 <= n_heavy <= 12

    def test_ligand_is_connected(self):
        lig = generate_ligand("042")
        assert len(lig.connected_components()) == 1

    def test_ligand_has_charges(self):
        lig = generate_ligand("074")
        assert any(a.charge != 0 for a in lig.atoms)

    def test_no_atom_overlaps(self):
        lig = generate_ligand("0D6")
        coords = lig.coords
        diff = coords[:, None] - coords[None, :]
        d = np.sqrt((diff**2).sum(axis=-1))
        np.fill_diagonal(d, 10.0)
        assert d.min() > 0.8

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            LigandGenerator(heavy_atoms_range=(1, 2))

    @given(st.text(alphabet="ABCDEFG0123456789", min_size=2, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_property_any_id_yields_valid_ligand(self, lid):
        lig = generate_ligand(lid)
        assert len(lig) >= 3
        assert len(lig.connected_components()) == 1
        assert np.isfinite(lig.coords).all()

    @given(st.text(alphabet="ABCDEFG0123456789", min_size=2, max_size=4))
    @settings(max_examples=10, deadline=None)
    def test_property_any_id_yields_valid_receptor(self, pid):
        rec = generate_receptor(pid)
        assert len(rec) > 100
        assert np.isfinite(rec.coords).all()
