"""Cache-effectiveness smoke: the CI gate for the artifact plane.

A tiny multi-receptor screen on the process backend must build each
receptor's grid maps exactly once across *all* workers — the acceptance
criterion of the shared-artifact-plane work. Run directly by the
``cache-smoke`` CI job; small enough for a shared runner.
"""

from __future__ import annotations

import glob

from repro.core.analysis import collect_outcomes
from repro.core.datasets import pair_relation
from repro.core.scidock import SciDockConfig, run_scidock
from repro.docking.autodock import AD4Parameters
from repro.docking.ga import GAConfig
from repro.docking.mc import ILSConfig
from repro.docking.vina import VinaParameters

RECEPTORS = ["2HHN", "1S4V"]
LIGANDS = ["0E6", "0D6", "042"]

SMOKE_AD4 = AD4Parameters(
    ga_runs=1,
    ga=GAConfig(population_size=8, generations=2, local_search_steps=4),
    final_refine_steps=10,
)
SMOKE_VINA = VinaParameters(
    exhaustiveness=1,
    ils=ILSConfig(restarts=1, steps_per_restart=2, bfgs_iterations=3),
)


def test_processes_screen_builds_each_receptor_once():
    pairs = pair_relation(receptors=RECEPTORS, ligands=LIGANDS)
    config = SciDockConfig(
        workers=2,
        backend="processes",
        ad4_params=SMOKE_AD4,
        vina_params=SMOKE_VINA,
    )
    report, store = run_scidock(pairs, config)

    assert report.succeeded
    outcomes = list(collect_outcomes(store, report.wkfid))
    assert len(outcomes) == len(RECEPTORS) * len(LIGANDS)

    stats = report.artifact_stats
    builds = stats["builds_by_artifact"]
    assert builds, "process backend must run with an artifact plane"
    # The gate: no receptor's map bundle was ever built twice, anywhere.
    assert max(builds.values()) == 1, f"rebuilt artifacts: {builds}"
    assert stats["builds"] >= len(RECEPTORS)
    assert stats["shm_hits"] > 0
    # The plane tears down with the run: nothing left in /dev/shm.
    assert not glob.glob("/dev/shm/rp*")
