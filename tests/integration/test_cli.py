"""Integration tests for the ``scidock`` CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dock_defaults(self):
        args = build_parser().parse_args(["dock"])
        assert args.scenario == "adaptive"
        assert args.workers == 4

    def test_sweep_cores_list(self):
        args = build_parser().parse_args(["sweep", "--cores", "2", "8"])
        assert args.cores == [2, 8]


class TestCommands:
    def test_dataset(self, capsys):
        assert main(["dataset"]) == 0
        out = capsys.readouterr().out
        assert "238 receptors" in out
        assert "42 ligands" in out

    def test_spec(self, capsys):
        assert main(["spec"]) == 0
        out = capsys.readouterr().out
        assert "<SciCumulus>" in out
        assert 'tag="SciDock"' in out

    def test_sweep_small(self, capsys):
        assert main(["sweep", "--cores", "2", "8", "--pairs", "40"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        lines = [l for l in out.splitlines() if l.strip().startswith(("2 ", "8 "))]
        assert len(lines) == 2

    def test_dock_small(self, capsys):
        assert main([
            "dock", "--receptors", "1PIP", "--ligands", "042", "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "042-1PIP" in out
        assert "FEB" in out


class TestExtendedCommands:
    def test_refine(self, capsys):
        assert main(["refine", "1PIP", "042", "--md-steps", "10", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "1PIP-042" in out
        assert "redock" in out

    def test_qsar(self, capsys):
        assert main([
            "qsar", "--n-receptors", "2", "--n-train-ligands", "6",
            "--workers", "2", "--top", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "q2" in out
        assert "predicted-best" in out

    def test_report(self, capsys):
        assert main([
            "report", "--receptors", "1PIP", "--ligands", "042",
            "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "# SciDock campaign report" in out
        assert "## Fault ledger" in out
