"""Map-cache invalidation across kernel parameters (CI smoke).

Persisted ``.npz`` map bundles are content-addressed; the kernel layer
extends the force-field fingerprint with table resolution and cutoff.
The contract: unchanged parameters hit the disk cache across runs,
while flipping the kernel mode, the table resolution or the cutoff
re-keys the bundle and forces a rebuild.
"""

from __future__ import annotations

import pytest

from repro.core.activities import (
    MAP_BUILDS,
    MAP_CACHE_HITS,
    reset_map_counters,
)
from repro.core.datasets import pair_relation
from repro.core.scidock import SciDockConfig, run_scidock
from repro.docking.autodock import AD4Parameters
from repro.docking.ga import GAConfig

SMOKE_AD4 = AD4Parameters(
    ga_runs=1,
    ga=GAConfig(population_size=8, generations=2, local_search_steps=4),
    final_refine_steps=10,
)


def _run(cache_dir: str, **overrides) -> None:
    pairs = pair_relation(receptors=["2HHN"], ligands=["0E6"])
    config = SciDockConfig(
        scenario="ad4",
        workers=2,
        backend="threads",
        shared_maps=False,
        map_cache=cache_dir,
        ad4_params=SMOKE_AD4,
        **overrides,
    )
    report, _ = run_scidock(pairs, config)
    assert report.succeeded


@pytest.fixture()
def cache_dir(tmp_path) -> str:
    return str(tmp_path / "mapcache")


class TestKernelCacheInvalidation:
    def test_same_params_hit_changed_params_miss(self, cache_dir):
        # Cold run populates the disk cache.
        reset_map_counters()
        _run(cache_dir, etables=True)
        assert sum(MAP_BUILDS.values()) == 1

        # Identical kernel parameters: disk hit, no rebuild.
        reset_map_counters()
        _run(cache_dir, etables=True)
        assert sum(MAP_BUILDS.values()) == 0
        assert MAP_CACHE_HITS["disk"] >= 1

        # Finer table resolution: different fingerprint, rebuild.
        reset_map_counters()
        _run(cache_dir, etables=True, etable_dr=0.01)
        assert sum(MAP_BUILDS.values()) == 1

        # Different cutoff: different fingerprint, rebuild.
        reset_map_counters()
        _run(cache_dir, etables=True, etable_rmax=6.0)
        assert sum(MAP_BUILDS.values()) == 1

    def test_analytic_and_tables_key_separately(self, cache_dir):
        reset_map_counters()
        _run(cache_dir, etables=False)
        assert sum(MAP_BUILDS.values()) == 1

        # Tables mode must not be served the analytic bundle.
        reset_map_counters()
        _run(cache_dir, etables=True)
        assert sum(MAP_BUILDS.values()) == 1

        # Back to analytic: the original bundle still hits.
        reset_map_counters()
        _run(cache_dir, etables=False)
        assert sum(MAP_BUILDS.values()) == 0
        assert MAP_CACHE_HITS["disk"] >= 1
