"""Cross-module integration tests: the whole system working together."""

import numpy as np
import pytest

from repro.chem.formats.pdbqt import parse_pdbqt
from repro.cloud.storage import S3ObjectStore, SharedFileSystem
from repro.core.analysis import collect_outcomes, top_interactions
from repro.core.datasets import pair_relation
from repro.core.scidock import SciDockConfig, run_scidock
from repro.docking.dlg import parse_dlg, parse_vina_log
from repro.perf.calibrate import calibrate_cost_model
from repro.perf.experiments import run_single_scale
from repro.provenance.prov_model import export_prov_document, to_prov_n
from repro.provenance.queries import (
    query1_activity_statistics,
    query2_files,
    workflow_tet,
)


@pytest.fixture(scope="module")
def run_with_fs():
    """A real run writing all artifacts through the shared file system."""
    fs = SharedFileSystem(S3ObjectStore(), root="/root/exp_SciDock")
    pairs = pair_relation(receptors=["2HHN", "1PIP"], ligands=["0E6"])
    config = SciDockConfig(workers=2, seed=2)
    context_fs = config.context()
    context_fs["fs"] = fs

    from repro.provenance.store import ProvenanceStore
    from repro.workflow.engine import LocalEngine
    from repro.core.scidock import build_scidock_workflow

    store = ProvenanceStore()
    engine = LocalEngine(store, workers=2)
    report = engine.run(build_scidock_workflow(config), pairs, context=context_fs)
    return report, store, fs


class TestArtifactsOnSharedFS:
    def test_all_stage_artifacts_written(self, run_with_fs):
        _, _, fs = run_with_fs
        listing = fs.store.list("/root/exp_SciDock/")
        kinds = {p.split("/")[3] for p in listing}
        assert {"babel", "prepare_ligand", "prepare_receptor", "prepare_gpf",
                "autogrid"} <= kinds

    def test_ligand_pdbqt_parses_back(self, run_with_fs):
        _, _, fs = run_with_fs
        text = fs.read_text("prepare_ligand/0E6/0E6.pdbqt")
        mol = parse_pdbqt(text)
        assert len(mol) > 5
        assert mol.metadata.get("torsdof", 0) >= 0

    def test_docking_log_parses_back(self, run_with_fs):
        report, store, fs = run_with_fs
        dlgs = query2_files(store, report.wkfid, ".dlg")
        logs = query2_files(store, report.wkfid, ".log")
        assert dlgs or logs
        for f in dlgs:
            parsed = parse_dlg(fs.read_text(f"{f.fdir}{f.fname}"))
            assert parsed["success"]
        for f in logs:
            parsed = parse_vina_log(fs.read_text(f"{f.fdir}{f.fname}"))
            assert parsed["success"]

    def test_file_sizes_match_provenance(self, run_with_fs):
        report, store, fs = run_with_fs
        for f in query2_files(store, report.wkfid, ".pdbqt"):
            assert fs.file_size(f"{f.fdir}{f.fname}") == f.fsize


class TestProvenanceIntegration:
    def test_prov_export_of_real_run(self, run_with_fs):
        report, store, _ = run_with_fs
        doc = export_prov_document(store, report.wkfid)
        assert doc["workflow"]["tag"] == "SciDock"
        assert len(doc["entity"]) > 5
        text = to_prov_n(doc)
        assert "endDocument" in text

    def test_tet_consistent_with_activations(self, run_with_fs):
        report, store, _ = run_with_fs
        tet = workflow_tet(store, report.wkfid)
        assert tet == pytest.approx(report.tet_seconds, rel=0.01)
        durations = [
            s.sum for s in query1_activity_statistics(store, report.wkfid)
        ]
        # Total busy time can exceed TET (2 workers) but not 2x TET + eps.
        assert sum(durations) <= 2 * tet + 1.0


class TestCalibrationLoop:
    def test_measured_costs_feed_simulation(self, run_with_fs):
        report, store, _ = run_with_fs
        measured = {
            s.tag: s.avg for s in query1_activity_statistics(store, report.wkfid)
        }
        model = calibrate_cost_model(measured, target_total_per_pair=216.0)
        res = run_single_scale(
            8, scenario="ad4", n_pairs=50, cost_model=model, failure_rate=0.0
        )
        # ~216 core-seconds per pair across 50 pairs on 8 cores gives a
        # TET in the right order of magnitude (pipelining + overheads).
        assert 50 * 216 / 8 * 0.5 < res.tet_seconds < 50 * 216 / 8 * 3


class TestBiologyPath:
    def test_top_interaction_reporting(self):
        pairs = pair_relation(receptors=["2HHN", "1S4V", "1HUC"], ligands=["0D6", "0E6"])
        report, store = run_scidock(pairs, SciDockConfig(workers=4, seed=3))
        outcomes = collect_outcomes(store, report.wkfid)
        top = top_interactions(outcomes, n=3)
        assert len(top) >= 1
        assert all(o.feb < 0 and o.converged for o in top)
        assert top == sorted(top, key=lambda o: o.feb)
