"""End-to-end distributed smoke: director + 2 TCP workers, one killed.

This is the CI ``distributed-smoke`` job's target. It exercises the
full socket stack — join handshake, context shipping, credit-based
pull dispatch, heartbeats, node-loss recovery — over real localhost
TCP with real worker subprocesses, and must finish fast (the CI job
carries a hard ``timeout-minutes``).
"""

import importlib.util
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.provenance.store import ProvenanceStore
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.engine import LocalEngine
from repro.workflow.relation import Relation

_HERE = Path(__file__).resolve().parent
_ACTIVITIES_DIR = _HERE.parent / "workflow"
SRC = _HERE.parents[1] / "src"

da = sys.modules.get("_dist_activities")
if da is None:
    _spec = importlib.util.spec_from_file_location(
        "_dist_activities", _ACTIVITIES_DIR / "_dist_activities.py"
    )
    da = importlib.util.module_from_spec(_spec)
    sys.modules["_dist_activities"] = da
    _spec.loader.exec_module(da)

N_TUPLES = 12


def _spawn_worker(address, node_id: str) -> subprocess.Popen:
    host, port = address
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC), str(_ACTIVITIES_DIR), env.get("PYTHONPATH", "")]
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.workflow.worker",
            "--join",
            f"{host}:{port}",
            "--slots",
            "2",
            "--node-id",
            node_id,
        ],
        env=env,
    )


#: CI matrix axis: the legacy one-frame-per-task protocol, and the
#: batched + zlib-compressed wire path (TASK_BATCH / RESULT_BATCH).
WIRE_MODES = {
    "plain": {},
    "batched-zlib": {
        "batch_size": 4,
        "batch_linger": 0.02,
        "compress_frames": True,
    },
}


@pytest.mark.parametrize("wire", sorted(WIRE_MODES))
def test_two_workers_survive_one_sigkill(wire):
    wf = Workflow(
        "smoke", [Activity("paced", Operator.MAP, fn=da.paced)]
    )
    relation = Relation(
        "in",
        [
            {"key": f"s{i:02d}", "receptor_id": f"R{i % 2}", "sleep_s": 0.2}
            for i in range(N_TUPLES)
        ],
    )
    store = ProvenanceStore()
    engine = LocalEngine(
        store,
        workers=4,
        backend="distributed",
        min_nodes=2,
        join_timeout=60.0,
        **WIRE_MODES[wire],
    )
    victim = _spawn_worker(engine.director_address, "smoke-victim")
    survivor = _spawn_worker(engine.director_address, "smoke-survivor")
    box: dict = {}

    def _run():
        box["report"] = engine.run(
            wf, relation, context={"shared_maps": False}
        )

    runner = threading.Thread(target=_run)
    runner.start()
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if sum(engine._director.tuples_per_node.values()) >= 2:
                break
            time.sleep(0.05)
        else:
            pytest.fail("run never got in flight")
        victim.send_signal(signal.SIGKILL)
        runner.join(timeout=120.0)
        assert not runner.is_alive(), "run hung after worker SIGKILL"
    finally:
        engine.shutdown()
        for proc in (victim, survivor):
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10.0)

    report = box["report"]
    assert sorted(t["key"] for t in report.output) == sorted(
        f"s{i:02d}" for i in range(N_TUPLES)
    )
    assert report.counts.get("FINISHED", 0) == N_TUPLES
    assert report.nodes_joined == 2
    assert report.nodes_lost == 1
    if wire == "batched-zlib":
        assert report.batches_sent >= 1
        assert report.wire_bytes_saved > 0
