"""Tests for the two-scenario experiment container."""

import pytest

from repro.core.datasets import pair_relation
from repro.core.experiment import SciDockExperiment
from repro.workflow.relation import Relation


@pytest.fixture(scope="module")
def experiment():
    pairs = pair_relation(
        receptors=["2HHN", "1S4V", "1PIP"], ligands=["042", "0E6"]
    )
    exp = SciDockExperiment(pairs, workers=4, seed=6)
    exp.run_both()
    return exp


class TestSciDockExperiment:
    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            SciDockExperiment(Relation("empty"))

    def test_both_scenarios_share_one_store(self, experiment):
        ad4 = experiment.runs["ad4"]
        vina = experiment.runs["vina"]
        assert ad4.wkfid != vina.wkfid
        assert experiment.store.workflow_row(ad4.wkfid)["tag"] == "SciDock"
        assert experiment.store.workflow_row(vina.wkfid)["tag"] == "SciDock"

    def test_outcomes_per_scenario(self, experiment):
        assert all(o.engine == "autodock4" for o in experiment.runs["ad4"].outcomes)
        assert all(o.engine == "vina" for o in experiment.runs["vina"].outcomes)
        assert len(experiment.runs["ad4"].outcomes) == 6

    def test_comparisons_require_both(self):
        exp = SciDockExperiment(
            pair_relation(receptors=["1PIP"], ligands=["042"]), workers=1
        )
        with pytest.raises(ValueError, match="not run yet"):
            exp.table3()

    def test_table3_covers_both_engines(self, experiment):
        rows = experiment.table3()
        engines = {r.engine for r in rows}
        assert engines == {"autodock4", "vina"}

    def test_favorable_counts(self, experiment):
        fav = experiment.favorable_counts()
        assert set(fav) == {"autodock4", "vina"}
        assert all(v >= 0 for v in fav.values())

    def test_agreement_computed(self, experiment):
        agg = experiment.agreement()
        assert agg.n_pairs == 6
        assert -1.0 <= agg.pearson_r <= 1.0

    def test_docking_time_ratio_positive(self, experiment):
        assert experiment.docking_time_ratio() > 0

    def test_total_activations(self, experiment):
        # 6 pairs x 8 activities x 2 workflows, minus any Hg blocking,
        # plus retries. Blocked pre-dispatch records also count rows.
        assert experiment.total_activations() >= 90

    def test_summary_mentions_key_numbers(self, experiment):
        text = experiment.summary()
        assert "2 workflows" in text
        assert "FEB(-)" in text
