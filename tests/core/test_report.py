"""Unit tests for the campaign report generator."""

import pytest

from repro.core.datasets import pair_relation
from repro.core.report import campaign_report
from repro.core.scidock import SciDockConfig, run_scidock
from repro.provenance.store import ProvenanceStore


@pytest.fixture(scope="module")
def campaign():
    pairs = pair_relation(receptors=["2HHN", "1PIP"], ligands=["042"])
    return run_scidock(pairs, SciDockConfig(workers=2, seed=4))


class TestCampaignReport:
    def test_contains_all_sections(self, campaign):
        report, store = campaign
        text = campaign_report(store, report.wkfid)
        for heading in (
            "# SciDock campaign report",
            "## Activity runtime statistics (Query 1)",
            "## Docking artifacts (Query 2)",
            "## Docking results",
            "## Fault ledger",
        ):
            assert heading in text

    def test_table3_rows_present(self, campaign):
        report, store = campaign
        text = campaign_report(store, report.wkfid)
        assert "| 042 |" in text
        assert "Total favorable interactions" in text

    def test_shortlist_when_hits_exist(self, campaign):
        report, store = campaign
        text = campaign_report(store, report.wkfid)
        if "## Shortlist" in text:
            assert "kcal/mol" in text.split("## Shortlist")[1]

    def test_custom_title(self, campaign):
        report, store = campaign
        text = campaign_report(store, report.wkfid, title="My screen")
        assert text.startswith("# My screen")

    def test_running_workflow_renders(self):
        store = ProvenanceStore()
        wkfid = store.begin_workflow("W", starttime=0.0)
        text = campaign_report(store, wkfid)
        assert "still running" in text

    def test_tet_reported(self, campaign):
        report, store = campaign
        text = campaign_report(store, report.wkfid)
        assert "Total execution time" in text
        assert "s**" in text
