"""Integration tests for the SciDock workflow (real execution)."""

import json

import pytest

from repro.core.activities import docking_filter, receptor_would_loop
from repro.core.analysis import (
    collect_outcomes,
    compute_table3,
    format_table3,
    outcomes_from_json,
    top_interactions,
    total_favorable,
)
from repro.core.datasets import pair_relation
from repro.core.scidock import (
    SciDockConfig,
    build_scidock_sim_workflow,
    build_scidock_workflow,
    run_scidock,
)
from repro.core.spec import scidock_xml
from repro.chem.generate import receptor_contains_mercury, receptor_size_class
from repro.perf.cost_model import ActivityCostModel
from repro.provenance.queries import query1_activity_statistics, query2_files
from repro.workflow.spec import parse_workflow_xml

ACTIVITY_TAGS = [
    "babel",
    "prepare_ligand",
    "prepare_receptor",
    "prepare_gpf",
    "autogrid",
    "docking_filter",
    "prepare_docking",
    "docking",
]


@pytest.fixture(scope="module")
def small_run():
    """One real 4-pair adaptive run shared by the read-only tests."""
    pairs = pair_relation(receptors=["2HHN", "1S4V"], ligands=["0E6", "0D6"])
    report, store = run_scidock(pairs, SciDockConfig(workers=4, seed=1))
    return report, store


class TestWorkflowShape:
    def test_eight_activities(self):
        wf = build_scidock_workflow()
        assert [a.tag for a in wf.activities] == ACTIVITY_TAGS

    def test_templates_attached(self):
        wf = build_scidock_workflow()
        assert "babel" in wf.activity("babel").template.command
        assert wf.activity("docking").extractors

    def test_looping_predicate_on_receptor_prep(self):
        wf = build_scidock_workflow()
        act = wf.activity("prepare_receptor")
        assert act.looping_predicate is receptor_would_loop

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SciDockConfig(scenario="bogus")

    def test_xml_spec_roundtrips(self):
        text = scidock_xml()
        wf, db = parse_workflow_xml(text)
        assert [a.tag for a in wf.activities] == ACTIVITY_TAGS
        assert db.server.startswith("ec2-")


class TestDockingFilter:
    def test_adaptive_routing_follows_size(self):
        for rec in ("2HHN", "1S4V", "3BC3", "4PAD"):
            out = docking_filter(
                {"receptor_id": rec, "ligand_id": "042"}, {"scenario": "adaptive"}
            )[0]
            expected = "vina" if receptor_size_class(rec) == "large" else "autodock4"
            assert out["engine"] == expected

    def test_scenario_overrides(self):
        tup = {"receptor_id": "2HHN", "ligand_id": "042"}
        assert docking_filter(tup, {"scenario": "ad4"})[0]["engine"] == "autodock4"
        assert docking_filter(tup, {"scenario": "vina"})[0]["engine"] == "vina"

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            docking_filter({"receptor_id": "X", "ligand_id": "Y"}, {"scenario": "zz"})


class TestRealRun:
    def test_all_activations_finish(self, small_run):
        report, _ = small_run
        assert report.succeeded
        # 4 pairs x 8 activities.
        assert report.counts.get("FINISHED", 0) == 32

    def test_outcomes_recorded(self, small_run):
        report, store = small_run
        outcomes = collect_outcomes(store, report.wkfid)
        assert len(outcomes) == 4
        assert {o.ligand for o in outcomes} == {"0E6", "0D6"}
        assert all(o.engine in ("autodock4", "vina") for o in outcomes)

    def test_docking_is_real(self, small_run):
        report, store = small_run
        outcomes = collect_outcomes(store, report.wkfid)
        # Energies are finite floats; most synthetic pockets bind weakly.
        assert all(abs(o.feb) < 100 for o in outcomes)

    def test_query1_covers_all_activities(self, small_run):
        report, store = small_run
        stats = {s.tag for s in query1_activity_statistics(store, report.wkfid)}
        assert stats == set(ACTIVITY_TAGS)

    def test_query2_finds_logs(self, small_run):
        report, store = small_run
        dlgs = query2_files(store, report.wkfid, ".dlg")
        logs = query2_files(store, report.wkfid, ".log")
        assert len(dlgs) + len(logs) == 4
        for f in dlgs:
            assert f.activity_tag == "docking"
            assert "/autodock4/" in f.fdir

    def test_deterministic_outcomes(self):
        pairs = pair_relation(receptors=["1HUC"], ligands=["042"])
        r1, s1 = run_scidock(pairs, SciDockConfig(workers=1, seed=5))
        r2, s2 = run_scidock(pairs.copy(), SciDockConfig(workers=1, seed=5))
        o1 = collect_outcomes(s1, r1.wkfid)
        o2 = collect_outcomes(s2, r2.wkfid)
        assert o1[0].feb == o2[0].feb

    def test_mercury_receptor_blocked(self):
        # Find a mercury receptor among the dataset and run one pair.
        from repro.core.datasets import CL0125_RECEPTORS

        hg = next(r for r in CL0125_RECEPTORS if receptor_contains_mercury(r))
        pairs = pair_relation(receptors=[hg], ligands=["042"])
        report, store = run_scidock(pairs, SciDockConfig(workers=1))
        assert report.blocked == 1
        # The pair never reaches docking.
        assert collect_outcomes(store, report.wkfid) == []


class TestAnalysis:
    def _outcomes(self):
        payloads = [
            json.dumps(
                {
                    "receptor": r, "ligand": l, "engine": e, "feb": feb,
                    "rmsd": rmsd, "in_pocket": conv, "converged": conv,
                }
            )
            for (r, l, e, feb, rmsd, conv) in [
                ("2HHN", "0E6", "autodock4", -6.0, 55.0, True),
                ("1S4V", "0E6", "autodock4", 1.0, 60.0, False),
                ("2HHN", "0E6", "vina", -5.0, 9.0, True),
                ("1S4V", "0E6", "vina", -4.0, 10.0, True),
            ]
        ]
        return outcomes_from_json(payloads)

    def test_table3_counts(self):
        rows = compute_table3(self._outcomes())
        by = {(r.engine, r.ligand): r for r in rows}
        assert by[("autodock4", "0E6")].feb_negative_count == 1
        assert by[("vina", "0E6")].feb_negative_count == 2
        assert by[("vina", "0E6")].avg_feb_negative == pytest.approx(-4.5)
        assert by[("autodock4", "0E6")].avg_rmsd == pytest.approx(57.5)

    def test_total_favorable(self):
        rows = compute_table3(self._outcomes())
        assert total_favorable(rows, "vina") == 2
        assert total_favorable(rows, "autodock4") == 1

    def test_top_interactions_sorted(self):
        top = top_interactions(self._outcomes(), n=2)
        assert [o.feb for o in top] == [-6.0, -5.0]

    def test_format_table3(self):
        text = format_table3(compute_table3(self._outcomes()))
        assert "0E6" in text and "autodock4" in text


class TestSimWorkflow:
    def test_sim_workflow_shape(self):
        wf = build_scidock_sim_workflow(ActivityCostModel())
        assert [a.tag for a in wf.activities] == ACTIVITY_TAGS
        assert all(a.cost_fn is not None for a in wf.activities)

    def test_sim_filter_routes(self):
        wf = build_scidock_sim_workflow(ActivityCostModel(), scenario="vina")
        out = wf.activity("docking_filter").run(
            {"receptor_id": "2HHN", "ligand_id": "042"}, {}
        )
        assert out[0]["engine"] == "vina"
