"""Focused unit tests for the individual SciDock activity functions."""

import json
import threading

import pytest

from repro.cloud.storage import S3ObjectStore, SharedFileSystem
from repro.core.activities import (
    KeyedCache,
    STANDARD_MAP_TYPES,
    autogrid_activity,
    babel,
    docking,
    docking_filter,
    prepare_docking,
    prepare_gpf_activity,
    prepare_ligand,
    prepare_receptor,
    receptor_would_loop,
)
from repro.core.scidock import FAST_AD4, FAST_VINA

PAIR = {"receptor_id": "1PIP", "ligand_id": "042"}


def ctx(**extra):
    base = {
        "seed": 0,
        "grid_spacing": 0.8,
        "expdir": "/root/exp_test",
        "ad4_params": FAST_AD4,
        "vina_params": FAST_VINA,
    }
    base.update(extra)
    return base


class TestKeyedCache:
    def test_build_once(self):
        cache = KeyedCache()
        calls = []
        for _ in range(3):
            cache.get_or_build("k", lambda: calls.append(1) or "value")
        assert len(calls) == 1

    def test_distinct_keys(self):
        cache = KeyedCache()
        assert cache.get_or_build("a", lambda: 1) == 1
        assert cache.get_or_build("b", lambda: 2) == 2

    def test_thread_safety(self):
        cache = KeyedCache()
        builds = []

        def build():
            builds.append(1)
            return "v"

        threads = [
            threading.Thread(target=lambda: cache.get_or_build("k", build))
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1


class TestPreparationActivities:
    def test_babel_emits_mol2(self):
        context = ctx()
        [out] = babel(dict(PAIR), context)
        assert out["ligand_mol2"].endswith("042.mol2")
        assert any(f[0].endswith(".sdf") for f in out["_files"])
        assert any(f[0].endswith(".mol2") for f in out["_files"])

    def test_babel_writes_through_fs(self):
        fs = SharedFileSystem(S3ObjectStore(), root="/root/exp_test")
        context = ctx(fs=fs)
        babel(dict(PAIR), context)
        assert fs.exists("/root/exp_test/babel/042/042.mol2")

    def test_prepare_ligand_reports_torsdof(self):
        [out] = prepare_ligand(dict(PAIR), ctx())
        assert out["torsdof"] >= 0
        assert out["ligand_pdbqt"].endswith(".pdbqt")

    def test_prepare_receptor_classifies_size(self):
        [out] = prepare_receptor(dict(PAIR), ctx())
        assert out["receptor_size_class"] in ("small", "large")

    def test_receptor_would_loop_matches_generator(self):
        from repro.chem.generate import receptor_contains_mercury

        for rid in ("1PIP", "2HHN", "2ACT", "1NQC"):
            assert receptor_would_loop({"receptor_id": rid}) == \
                receptor_contains_mercury(rid)

    def test_gpf_activity(self):
        [out] = prepare_gpf_activity(dict(PAIR), ctx())
        assert out["gpf"].endswith("042_1PIP.gpf")

    def test_autogrid_activity_reuses_cache(self):
        context = ctx()
        [out1] = autogrid_activity(dict(PAIR), context)
        maps1 = context["caches"]["maps"].get_or_build("1PIP", lambda: None)
        [out2] = autogrid_activity(dict(PAIR), context)
        maps2 = context["caches"]["maps"].get_or_build("1PIP", lambda: None)
        assert maps1 is maps2
        assert out1["maps_fld"] == out2["maps_fld"]

    def test_autogrid_covers_standard_types(self):
        context = ctx()
        autogrid_activity(dict(PAIR), context)
        maps = context["caches"]["maps"].get_or_build("1PIP", lambda: None)
        assert set(STANDARD_MAP_TYPES) <= set(maps.atom_types)


class TestDockingActivities:
    def test_prepare_docking_ad4_writes_dpf(self):
        tup = dict(PAIR, engine="autodock4")
        [out] = prepare_docking(tup, ctx())
        assert out["docking_params"].endswith(".dpf")

    def test_prepare_docking_vina_writes_conf(self):
        tup = dict(PAIR, engine="vina")
        [out] = prepare_docking(tup, ctx())
        assert out["docking_params"].endswith(".conf")

    def test_docking_unknown_engine_raises(self):
        tup = dict(PAIR, engine="glide")
        with pytest.raises(ValueError, match="glide"):
            docking(tup, ctx())

    def test_docking_vina_payload_complete(self):
        tup = dict(PAIR, engine="vina")
        [out] = docking(tup, ctx())
        payload = json.loads(out["_extract_payload"])
        for key in ("feb", "rmsd", "engine", "in_pocket", "converged", "modes"):
            assert key in payload
        assert payload["engine"] == "vina"
        assert out["feb"] == payload["feb"]

    def test_docking_ad4_writes_dlg(self):
        tup = dict(PAIR, engine="autodock4")
        [out] = docking(tup, ctx())
        assert out["_files"][0][0].endswith(".dlg")

    def test_docking_deterministic_per_seed(self):
        tup = dict(PAIR, engine="vina")
        [a] = docking(tup, ctx(seed=3))
        [b] = docking(dict(PAIR, engine="vina"), ctx(seed=3))
        assert a["feb"] == b["feb"]


class TestDockingFilterScenarios:
    def test_adaptive_uses_precomputed_size_class(self):
        tup = dict(PAIR, receptor_size_class="large")
        [out] = docking_filter(tup, {"scenario": "adaptive"})
        assert out["engine"] == "vina"

    def test_default_scenario_is_adaptive(self):
        [out] = docking_filter(dict(PAIR), {})
        assert out["engine"] in ("autodock4", "vina")


class TestReceptorMetadataMemoization:
    def test_pocket_reads_do_not_regenerate_receptor(self, monkeypatch):
        import repro.core.activities as acts

        calls = []
        real = acts.generate_receptor

        def counting(rec_id):
            calls.append(rec_id)
            return real(rec_id)

        monkeypatch.setattr(acts, "generate_receptor", counting)
        context = ctx()
        # One receptor, several box/pocket consumers across activations:
        # prepare_receptor builds the prep (one generate), the box/pocket
        # helpers hit the memoized metadata (one more), and every later
        # activation reuses both.
        prepare_receptor(dict(PAIR), context)
        prepare_gpf_activity(dict(PAIR, torsdof=4), context)
        for engine in ("autodock4", "vina"):
            docking(dict(PAIR, engine=engine), context)
            docking(dict(PAIR, engine=engine), context)
        assert len(calls) <= 2

    def test_shared_search_params_not_mutated_by_dock(self):
        # The engines derive a per-receptor translation extent; they must
        # copy the shared config rather than write through it (two worker
        # threads docking different receptors race on that field).
        ad4_before = FAST_AD4.ga.translation_extent
        vina_before = FAST_VINA.ils.translation_extent
        docking(dict(PAIR, engine="autodock4"), ctx())
        docking(dict(PAIR, engine="vina"), ctx())
        assert FAST_AD4.ga.translation_extent == ad4_before
        assert FAST_VINA.ils.translation_extent == vina_before
