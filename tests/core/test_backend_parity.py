"""Backend parity: threads vs processes produce identical screens, and
the artifact plane leaves nothing behind — even after a worker crash."""

from __future__ import annotations

import glob

import pytest

from repro.core import activities as acts
from repro.core.analysis import collect_outcomes
from repro.core.datasets import pair_relation
from repro.core.scidock import SciDockConfig, run_scidock
from repro.docking.autodock import AD4Parameters
from repro.docking.ga import GAConfig
from repro.docking.mc import ILSConfig
from repro.docking.vina import VinaParameters
from repro.provenance.store import ProvenanceStore
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.engine import LocalEngine
from repro.workflow.fault import RetryPolicy, crash_activation
from repro.workflow.relation import Relation

#: Micro search budgets: enough to exercise every code path, small
#: enough for a spawn-heavy parity matrix.
MICRO_AD4 = AD4Parameters(
    ga_runs=1,
    ga=GAConfig(population_size=8, generations=2, local_search_steps=4),
    final_refine_steps=10,
)
MICRO_VINA = VinaParameters(
    exhaustiveness=1,
    ils=ILSConfig(restarts=1, steps_per_restart=2, bfgs_iterations=3),
)

RECEPTORS = ["2HHN", "1S4V"]
LIGANDS = ["0E6", "0D6"]


def _screen(backend: str, **overrides):
    config = SciDockConfig(
        workers=2,
        backend=backend,
        ad4_params=MICRO_AD4,
        vina_params=MICRO_VINA,
        **overrides,
    )
    pairs = pair_relation(receptors=RECEPTORS, ligands=LIGANDS)
    report, store = run_scidock(pairs, config)
    outcomes = sorted(
        (o.receptor, o.ligand, o.engine, o.feb, o.rmsd)
        for o in collect_outcomes(store, report.wkfid)
    )
    return report, outcomes


def _no_plane_segments() -> bool:
    return not glob.glob("/dev/shm/rp*")


class TestBackendParity:
    @pytest.fixture(scope="class")
    def runs(self):
        threads_report, threads_out = _screen("threads")
        proc_report, proc_out = _screen("processes")
        return threads_report, threads_out, proc_report, proc_out

    def test_identical_output_relation(self, runs):
        _, threads_out, _, proc_out = runs
        assert threads_out == proc_out
        assert len(proc_out) == len(RECEPTORS) * len(LIGANDS)

    def test_both_backends_succeed(self, runs):
        threads_report, _, proc_report, _ = runs
        assert threads_report.succeeded and proc_report.succeeded

    def test_maps_built_once_per_receptor_across_workers(self, runs):
        _, _, proc_report, _ = runs
        stats = proc_report.artifact_stats
        builds = stats["builds_by_artifact"]
        assert builds, "processes backend must run with an artifact plane"
        assert max(builds.values()) == 1
        # The adaptive scenario sends every receptor through AutoGrid.
        ad4_builds = {k for k in builds if k.startswith("ad4maps:")}
        assert len(ad4_builds) == len(RECEPTORS)

    def test_no_segments_survive_shutdown(self, runs):
        assert _no_plane_segments()

    def test_shared_maps_opt_out(self):
        report, outcomes = _screen("processes", shared_maps=False)
        assert report.artifact_stats == {}
        _, baseline = _screen("threads")
        assert outcomes == baseline
        assert _no_plane_segments()


class TestMapCachePersistence:
    def test_second_run_hits_disk_not_autogrid(self, tmp_path):
        cache_dir = str(tmp_path / "mapcache")
        report1, out1 = _screen("processes", map_cache=cache_dir)
        assert report1.artifact_stats["builds"] > 0
        report2, out2 = _screen("processes", map_cache=cache_dir)
        assert out1 == out2
        assert report2.artifact_stats["builds"] == 0
        assert report2.artifact_stats["disk_hits"] > 0

    def test_threads_backend_uses_disk_cache_directly(self, tmp_path):
        cache_dir = str(tmp_path / "mapcache")
        acts.reset_map_counters()
        _, out1 = _screen("threads", map_cache=cache_dir)
        assert sum(acts.MAP_BUILDS.values()) > 0
        first_builds = dict(acts.MAP_BUILDS)
        acts.reset_map_counters()
        _, out2 = _screen("threads", map_cache=cache_dir)
        assert out1 == out2
        assert sum(acts.MAP_BUILDS.values()) == 0
        assert acts.MAP_CACHE_HITS["disk"] >= len(first_builds)
        acts.reset_map_counters()


class TestWorkerCrashCleanup:
    def test_crash_after_publish_leaks_nothing(self):
        # Build maps into the plane, then kill the worker outright: the
        # engine must fail the run gracefully and still unlink segments.
        wf = Workflow(
            "crashy",
            [
                Activity("autogrid", Operator.MAP, fn=acts.autogrid_activity),
                Activity("crash", Operator.MAP, fn=crash_activation),
            ],
        )
        engine = LocalEngine(
            ProvenanceStore(),
            workers=1,
            backend="processes",
            retry=RetryPolicy(max_attempts=1),
        )
        relation = Relation(
            "in", [{"receptor_id": "2HHN", "ligand_id": "0E6"}]
        )
        report = engine.run(
            wf, relation, context={"grid_spacing": 1.2, "scenario": "ad4"}
        )
        assert not report.succeeded
        assert report.artifact_stats["builds"] == 1
        assert report.artifact_stats["segments"]
        assert _no_plane_segments()


class TestRunStateCleanup:
    def test_engine_broadcasts_cache_drop(self):
        engine = LocalEngine(ProvenanceStore(), workers=2, backend="processes")
        wf = Workflow(
            "tiny", [Activity("babel", Operator.MAP, fn=acts.babel)]
        )
        relation = Relation(
            "in",
            [
                {"receptor_id": r, "ligand_id": lig}
                for r in RECEPTORS
                for lig in LIGANDS
            ],
        )
        report = engine.run(wf, relation, context={})
        assert report.succeeded
        # Every worker answered the cleanup broadcast, and at least one
        # actually held (and dropped) run state for the cache token.
        assert len(engine.last_cache_cleanup) == 2
        assert not any(
            isinstance(r, Exception) for r in engine.last_cache_cleanup
        )
        assert any(r is True for r in engine.last_cache_cleanup)
