"""Unit tests for the visualization module and the engine-agreement analysis."""

import json

import numpy as np
import pytest

from repro.chem.atom import Atom
from repro.chem.generate import generate_ligand, generate_receptor
from repro.chem.molecule import Molecule
from repro.core.analysis import engine_agreement, outcomes_from_json
from repro.docking.box import GridBox
from repro.viz.render import ascii_complex, project_orthographic, render_complex_svg


def _outcome(receptor, ligand, engine, feb):
    return json.dumps(
        {
            "receptor": receptor, "ligand": ligand, "engine": engine,
            "feb": feb, "rmsd": 5.0, "in_pocket": True, "converged": feb < 0,
        }
    )


class TestEngineAgreement:
    def _correlated(self, noise=0.0, n=10):
        rng = np.random.default_rng(0)
        ad4, vina = [], []
        for i in range(n):
            base = -2.0 - i * 0.5
            ad4.append(_outcome(f"R{i}", "L", "autodock4", base))
            vina.append(
                _outcome(f"R{i}", "L", "vina", base * 0.7 + rng.normal(scale=noise))
            )
        return outcomes_from_json(ad4), outcomes_from_json(vina)

    def test_perfectly_correlated(self):
        ad4, vina = self._correlated(noise=0.0)
        agg = engine_agreement(ad4, vina)
        assert agg.pearson_r == pytest.approx(1.0, abs=1e-9)
        assert agg.spearman_rho == pytest.approx(1.0, abs=1e-9)
        assert agg.n_pairs == 10

    def test_noisy_correlation_still_positive(self):
        ad4, vina = self._correlated(noise=0.5)
        agg = engine_agreement(ad4, vina)
        assert agg.pearson_r > 0.8

    def test_mean_febs_reported(self):
        ad4, vina = self._correlated()
        agg = engine_agreement(ad4, vina)
        assert agg.mean_feb_ad4 < 0
        assert agg.mean_feb_vina < 0

    def test_too_few_common_pairs_raises(self):
        ad4 = outcomes_from_json([_outcome("R1", "L", "autodock4", -5)])
        vina = outcomes_from_json([_outcome("R1", "L", "vina", -4)])
        with pytest.raises(ValueError, match="common pairs"):
            engine_agreement(ad4, vina)

    def test_disjoint_pairs_raise(self):
        ad4 = outcomes_from_json(
            [_outcome(f"A{i}", "L", "autodock4", -5) for i in range(4)]
        )
        vina = outcomes_from_json(
            [_outcome(f"B{i}", "L", "vina", -4) for i in range(4)]
        )
        with pytest.raises(ValueError):
            engine_agreement(ad4, vina)


class TestProjection:
    def test_shapes(self):
        coords = np.arange(12.0).reshape(4, 3)
        xy, z = project_orthographic(coords, view_axis=2)
        assert xy.shape == (4, 2)
        assert np.allclose(z, coords[:, 2])

    def test_axis_selection(self):
        coords = np.arange(6.0).reshape(2, 3)
        xy, z = project_orthographic(coords, view_axis=0)
        assert np.allclose(z, coords[:, 0])
        assert np.allclose(xy, coords[:, 1:])

    def test_validation(self):
        with pytest.raises(ValueError):
            project_orthographic(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            project_orthographic(np.zeros((3, 3)), view_axis=5)


class TestRendering:
    @pytest.fixture(scope="class")
    def complex_pair(self):
        rec = generate_receptor("2HHN")
        lig = generate_ligand("0E6")
        # Pose the ligand at the pocket for a meaningful picture.
        center = np.array(rec.metadata["pocket_center"])
        lig.set_coords(lig.coords - lig.centroid() + center)
        box = GridBox.around_pocket(center, rec.metadata["pocket_radius"])
        return rec, lig, box

    def test_svg_structure(self, complex_pair):
        rec, lig, box = complex_pair
        svg = render_complex_svg(rec, lig, box, title="2HHN-0E6")
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "2HHN-0E6" in svg
        assert "stroke-dasharray" in svg  # the box
        # Every ligand atom drawn on top.
        assert svg.count('r="4"') == len(lig.atoms)

    def test_svg_without_box(self, complex_pair):
        rec, lig, _ = complex_pair
        svg = render_complex_svg(rec, lig, None)
        assert "stroke-dasharray" not in svg

    def test_svg_empty_raises(self, complex_pair):
        rec, lig, _ = complex_pair
        with pytest.raises(ValueError):
            render_complex_svg(Molecule(), lig)

    def test_ascii_canvas(self, complex_pair):
        rec, lig, _ = complex_pair
        art = ascii_complex(rec, lig, width=60, height=20)
        lines = art.rstrip("\n").split("\n")
        assert len(lines) == 20
        assert all(len(l) == 60 for l in lines)
        assert "#" in art  # ligand visible
        assert "." in art or ":" in art  # receptor visible

    def test_ascii_validation(self, complex_pair):
        rec, lig, _ = complex_pair
        with pytest.raises(ValueError):
            ascii_complex(rec, lig, width=3, height=2)

    def test_single_atom_molecules(self):
        rec = Molecule("R")
        rec.add_atom(Atom(1, "C1", "C", [0, 0, 0]))
        lig = Molecule("L")
        lig.add_atom(Atom(1, "O1", "O", [2, 2, 2]))
        svg = render_complex_svg(rec, lig)
        assert "<circle" in svg
