"""Unit tests for the Table 2 dataset and pair sweep."""

import pytest

from repro.core.datasets import (
    CL0125_RECEPTORS,
    CP_LIGANDS,
    TABLE3_LIGANDS,
    ligand_count,
    pair_relation,
    receptor_count,
)


class TestTable2:
    def test_receptor_count_matches_paper(self):
        assert receptor_count() == 238

    def test_ligand_count_matches_paper(self):
        assert ligand_count() == 42

    def test_total_pairs_near_ten_thousand(self):
        assert receptor_count() * ligand_count() == 9996

    def test_no_duplicate_receptors(self):
        assert len(set(CL0125_RECEPTORS)) == 238

    def test_no_duplicate_ligands(self):
        assert len(set(CP_LIGANDS)) == 42

    def test_paper_highlights_present(self):
        # The paper's best interactions involve these structures.
        for pid in ("2HHN", "1S4V", "1HUC"):
            assert pid in CL0125_RECEPTORS
        for lig in ("0E6", "0D6"):
            assert lig in CP_LIGANDS

    def test_table3_ligands(self):
        assert TABLE3_LIGANDS == ("042", "074", "0D6", "0E6")
        assert set(TABLE3_LIGANDS) <= set(CP_LIGANDS)

    def test_receptor_ids_are_pdb_shaped(self):
        assert all(len(r) == 4 and r[0].isdigit() for r in CL0125_RECEPTORS)


class TestPairRelation:
    def test_full_sweep_size(self):
        rel = pair_relation()
        assert len(rel) == 9996

    def test_limit(self):
        rel = pair_relation(limit=100)
        assert len(rel) == 100

    def test_ligand_major_order(self):
        # "First 1,000 pairs" must cover 238 receptors x the first ligands.
        rel = pair_relation(limit=952)
        ligands = {t["ligand_id"] for t in rel}
        assert ligands == set(TABLE3_LIGANDS)

    def test_varies_receptor_per_ligand(self):
        rel = pair_relation(receptors=["A1AA", "B2BB"], ligands=["042"])
        assert [t["receptor_id"] for t in rel] == ["A1AA", "B2BB"]

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            pair_relation(receptors=[], ligands=["042"])

    def test_schema(self):
        rel = pair_relation(limit=1)
        assert rel.schema == ("ligand_id", "receptor_id")
