"""Unit tests for the discrete-event clock."""

import pytest

from repro.cloud.simclock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(100.0).now == 100.0

    def test_schedule_negative_raises(self):
        with pytest.raises(ValueError):
            SimClock().schedule(-1, lambda: None)

    def test_schedule_at_past_raises(self):
        c = SimClock(10.0)
        with pytest.raises(ValueError):
            c.schedule_at(5.0, lambda: None)

    def test_events_run_in_time_order(self):
        c = SimClock()
        order = []
        c.schedule(5, lambda: order.append("b"))
        c.schedule(1, lambda: order.append("a"))
        c.schedule(9, lambda: order.append("c"))
        c.run()
        assert order == ["a", "b", "c"]
        assert c.now == 9.0

    def test_ties_break_by_insertion(self):
        c = SimClock()
        order = []
        c.schedule(3, lambda: order.append(1))
        c.schedule(3, lambda: order.append(2))
        c.run()
        assert order == [1, 2]

    def test_step_returns_false_when_empty(self):
        assert SimClock().step() is False

    def test_events_can_schedule_events(self):
        c = SimClock()
        seen = []

        def first():
            seen.append(c.now)
            c.schedule(2, lambda: seen.append(c.now))

        c.schedule(1, first)
        c.run()
        assert seen == [1.0, 3.0]

    def test_run_until_stops_early(self):
        c = SimClock()
        seen = []
        c.schedule(1, lambda: seen.append(1))
        c.schedule(10, lambda: seen.append(10))
        c.run(until=5)
        assert seen == [1]
        assert c.now == 5.0
        assert c.pending == 1

    def test_run_until_advances_even_without_events(self):
        c = SimClock()
        c.run(until=42.0)
        assert c.now == 42.0

    def test_advance_to_backwards_raises(self):
        c = SimClock(5.0)
        with pytest.raises(ValueError):
            c.advance_to(1.0)
