"""Unit tests for the virtual cluster and failure models."""

import pytest

from repro.cloud.cluster import VirtualCluster
from repro.cloud.failures import ActivityFailureModel, LoopingStateModel, _unit_hash
from repro.cloud.provider import CloudProvider
from repro.cloud.simclock import SimClock


class TestPlanMix:
    def test_exact_large_multiple(self):
        plan = VirtualCluster.plan_mix(16)
        assert [t.name for t in plan] == ["m3.2xlarge", "m3.2xlarge"]

    def test_top_up_with_small(self):
        plan = VirtualCluster.plan_mix(12)
        assert [t.name for t in plan] == ["m3.2xlarge", "m3.xlarge"]

    def test_small_targets(self):
        assert [t.name for t in VirtualCluster.plan_mix(2)] == ["m3.xlarge"]

    def test_meets_or_exceeds_target(self):
        for target in (1, 2, 5, 7, 13, 32, 128):
            plan = VirtualCluster.plan_mix(target)
            assert sum(t.cores for t in plan) >= target

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            VirtualCluster.plan_mix(0)


class TestVirtualCluster:
    def setup_method(self):
        self.clock = SimClock()
        self.provider = CloudProvider(self.clock)
        self.cluster = VirtualCluster(self.provider)

    def test_scale_up(self):
        self.cluster.scale_to(16)
        assert self.cluster.total_cores >= 16

    def test_scale_is_idempotent(self):
        self.cluster.scale_to(16)
        n = len(self.cluster.active_vms)
        self.cluster.scale_to(16)
        assert len(self.cluster.active_vms) == n

    def test_scale_down(self):
        self.cluster.scale_to(32)
        self.cluster.scale_to(8)
        assert 8 <= self.cluster.total_cores < 32

    def test_scale_down_never_undershoots(self):
        self.cluster.scale_to(24)
        self.cluster.scale_to(9)
        assert self.cluster.total_cores >= 9

    def test_cores_handles(self):
        self.cluster.scale_to(12)
        handles = self.cluster.cores()
        assert len(handles) == self.cluster.total_cores
        assert all(h.speed > 0 for h in handles)

    def test_terminate_all(self):
        self.cluster.scale_to(8)
        self.cluster.terminate_all()
        assert self.cluster.total_cores == 0

    def test_cost_includes_terminated(self):
        self.cluster.scale_to(4)
        self.clock.run()
        self.clock.advance_to(3600)
        self.cluster.terminate_all()
        assert self.cluster.cost() > 0


class TestFailureModels:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ActivityFailureModel(rate=1.0)
        with pytest.raises(ValueError):
            ActivityFailureModel(rate=-0.1)

    def test_deterministic(self):
        m = ActivityFailureModel(rate=0.1, seed=1)
        assert m.fails("act-1", 0) == m.fails("act-1", 0)

    def test_rate_approximately_respected(self):
        m = ActivityFailureModel(rate=0.10, seed=2)
        n = 5000
        failures = sum(m.fails(f"act-{i}") for i in range(n))
        assert 0.07 < failures / n < 0.13

    def test_reexecution_eventually_succeeds(self):
        m = ActivityFailureModel(rate=0.5, seed=3)
        for key in ("a", "b", "c"):
            assert any(not m.fails(key, attempt) for attempt in range(20))

    def test_zero_rate_never_fails(self):
        m = ActivityFailureModel(rate=0.0)
        assert not any(m.fails(f"k{i}") for i in range(100))

    def test_unit_hash_in_range(self):
        vals = [_unit_hash("x", i) for i in range(100)]
        assert all(0 <= v < 1 for v in vals)

    def test_looping_on_mercury(self):
        m = LoopingStateModel()
        assert m.would_loop("any", receptor_has_hg=True)
        assert not m.would_loop("any", receptor_has_hg=False)

    def test_looping_disabled(self):
        m = LoopingStateModel(hg_loops=False)
        assert not m.would_loop("any", receptor_has_hg=True)

    def test_extra_looping_keys(self):
        m = LoopingStateModel(extra_looping_keys={"bad-ligand"})
        assert m.would_loop("bad-ligand")
        assert not m.would_loop("good-ligand")
