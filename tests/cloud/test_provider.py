"""Unit tests for the simulated EC2 provider and instance catalog."""

import pytest

from repro.cloud.instance import INSTANCE_CATALOG, M3_2XLARGE, M3_XLARGE, InstanceType, table1_rows
from repro.cloud.provider import CloudProvider, ProviderError, VMState
from repro.cloud.simclock import SimClock


class TestCatalog:
    def test_paper_instance_types(self):
        assert M3_XLARGE.cores == 4
        assert M3_2XLARGE.cores == 8
        assert "E5-2670" in M3_XLARGE.processor

    def test_table1_rows_match_paper(self):
        rows = table1_rows()
        assert rows == [
            {"instance_type": "m3.xlarge", "cores": 4, "physical_processor": "Intel Xeon E5-2670"},
            {"instance_type": "m3.2xlarge", "cores": 8, "physical_processor": "Intel Xeon E5-2670"},
        ]

    def test_catalog_keys(self):
        assert set(INSTANCE_CATALOG) == {"m3.xlarge", "m3.2xlarge"}

    def test_invalid_instance_type(self):
        with pytest.raises(ValueError):
            InstanceType("bad", 0, 1.0, "x", 0.1)
        with pytest.raises(ValueError):
            InstanceType("bad", 1, 1.0, "x", -0.1)


class TestProvider:
    def setup_method(self):
        self.clock = SimClock()
        self.ec2 = CloudProvider(self.clock)

    def test_provision_starts_pending(self):
        [vm] = self.ec2.provision("m3.xlarge")
        assert vm.state == VMState.PENDING

    def test_boot_transition(self):
        [vm] = self.ec2.provision("m3.xlarge")
        self.clock.run()
        assert vm.state == VMState.RUNNING
        assert vm.ready_time == pytest.approx(M3_XLARGE.boot_seconds)

    def test_unknown_type_raises(self):
        with pytest.raises(ProviderError, match="unknown instance type"):
            self.ec2.provision("t2.nano")

    def test_zero_count_raises(self):
        with pytest.raises(ProviderError):
            self.ec2.provision("m3.xlarge", count=0)

    def test_instance_limit(self):
        ec2 = CloudProvider(self.clock, max_instances=2)
        ec2.provision("m3.xlarge", count=2)
        with pytest.raises(ProviderError, match="limit"):
            ec2.provision("m3.xlarge")

    def test_terminate(self):
        [vm] = self.ec2.provision("m3.xlarge")
        self.clock.run()
        self.ec2.terminate(vm.vm_id)
        assert vm.state == VMState.TERMINATED
        with pytest.raises(ProviderError, match="already terminated"):
            self.ec2.terminate(vm.vm_id)

    def test_terminated_vm_never_boots(self):
        [vm] = self.ec2.provision("m3.xlarge")
        self.ec2.terminate(vm.vm_id)
        self.clock.run()
        assert vm.state == VMState.TERMINATED

    def test_describe_unknown_raises(self):
        with pytest.raises(ProviderError):
            self.ec2.describe("i-nope")

    def test_running_cores(self):
        self.ec2.provision("m3.2xlarge", count=2)
        assert self.ec2.running_cores() == 0  # still booting
        self.clock.run()
        assert self.ec2.running_cores() == 16

    def test_billing_rounds_up(self):
        [vm] = self.ec2.provision("m3.xlarge")
        self.clock.run()
        self.clock.advance_to(3600 * 1.5)
        assert vm.billed_hours(self.clock.now) == 2
        assert vm.cost(self.clock.now) == pytest.approx(2 * M3_XLARGE.hourly_price_usd)

    def test_billing_stops_at_termination(self):
        [vm] = self.ec2.provision("m3.xlarge")
        self.clock.run()
        self.clock.advance_to(1800)
        self.ec2.terminate(vm.vm_id)
        self.clock.advance_to(36000)
        assert vm.billed_hours(self.clock.now) == 1

    def test_total_cost_aggregates(self):
        self.ec2.provision("m3.xlarge")
        self.ec2.provision("m3.2xlarge")
        self.clock.run()
        self.clock.advance_to(3600)
        expected = M3_XLARGE.hourly_price_usd + M3_2XLARGE.hourly_price_usd
        assert self.ec2.total_cost() == pytest.approx(expected)

    def test_instances_filter_by_state(self):
        [a] = self.ec2.provision("m3.xlarge")
        [b] = self.ec2.provision("m3.xlarge")
        self.clock.run()
        self.ec2.terminate(a.vm_id)
        assert self.ec2.instances(VMState.RUNNING) == [b]
        assert self.ec2.instances(VMState.TERMINATED) == [a]
