"""Unit tests for the S3 object store and shared file system."""

import pytest

from repro.cloud.storage import S3ObjectStore, SharedFileSystem, StorageError


class TestObjectStore:
    def setup_method(self):
        self.s3 = S3ObjectStore()

    def test_put_get_roundtrip(self):
        self.s3.put("a/b.txt", "hello")
        data, _ = self.s3.get("a/b.txt")
        assert data == b"hello"

    def test_put_bytes(self):
        self.s3.put("bin", b"\x00\x01")
        assert self.s3.get("bin")[0] == b"\x00\x01"

    def test_empty_key_raises(self):
        with pytest.raises(StorageError):
            self.s3.put("", "x")

    def test_get_missing_raises(self):
        with pytest.raises(StorageError):
            self.s3.get("nope")

    def test_delete(self):
        self.s3.put("k", "v")
        self.s3.delete("k")
        assert not self.s3.exists("k")
        with pytest.raises(StorageError):
            self.s3.delete("k")

    def test_list_prefix(self):
        for k in ("exp/a", "exp/b", "other/c"):
            self.s3.put(k, "x")
        assert self.s3.list("exp/") == ["exp/a", "exp/b"]

    def test_size(self):
        self.s3.put("k", "12345")
        assert self.s3.size("k") == 5
        with pytest.raises(StorageError):
            self.s3.size("missing")

    def test_cost_model_scales_with_size(self):
        t_small = self.s3.put("s", b"x")
        t_big = self.s3.put("b", b"x" * 10_000_000)
        assert t_big > t_small
        assert t_small >= self.s3.op_latency

    def test_invalid_model_params(self):
        with pytest.raises(ValueError):
            S3ObjectStore(op_latency=-1)
        with pytest.raises(ValueError):
            S3ObjectStore(bandwidth_bps=0)

    def test_stats_accumulate(self):
        self.s3.put("k", "abc")
        self.s3.get("k")
        assert self.s3.stats.puts == 1
        assert self.s3.stats.gets == 1
        assert self.s3.stats.bytes_in == 3
        assert self.s3.stats.bytes_out == 3
        assert self.s3.stats.total_latency_seconds > 0

    def test_total_bytes(self):
        self.s3.put("a", "xx")
        self.s3.put("b", "yyy")
        assert self.s3.total_bytes == 5


class TestSharedFileSystem:
    def setup_method(self):
        self.fs = SharedFileSystem(root="/root/exp_SciDock")

    def test_relative_paths_anchored_at_root(self):
        self.fs.write_text("autodock4/1/out.dlg", "log")
        assert self.fs.exists("/root/exp_SciDock/autodock4/1/out.dlg")

    def test_absolute_paths_used_verbatim(self):
        self.fs.write_text("/tmp/x.txt", "y")
        assert self.fs.read_text("/tmp/x.txt") == "y"

    def test_roundtrip_text_and_bytes(self):
        self.fs.write_text("f.txt", "data")
        assert self.fs.read_text("f.txt") == "data"
        self.fs.write_bytes("f.bin", b"\x01")
        assert self.fs.read_bytes("f.bin") == b"\x01"

    def test_listdir(self):
        self.fs.write_text("d/a.txt", "1")
        self.fs.write_text("d/b.txt", "2")
        names = self.fs.listdir("d")
        assert len(names) == 2
        assert all(n.endswith((".txt",)) for n in names)

    def test_remove(self):
        self.fs.write_text("gone.txt", "x")
        self.fs.remove("gone.txt")
        assert not self.fs.exists("gone.txt")

    def test_file_size(self):
        self.fs.write_text("s.txt", "abcd")
        assert self.fs.file_size("s.txt") == 4

    def test_empty_path_raises(self):
        with pytest.raises(StorageError):
            self.fs.write_text("", "x")
