"""Virtual screening campaign: the paper's drug-discovery use case.

Screens cysteine-protease receptors against CP-specific ligands with the
full SciDock workflow (adaptive AD4/Vina routing), then mines the
provenance database for favorable interactions — the workflow a
medicinal chemist would run to shortlist protease drug-target candidates
for neglected tropical diseases.

Run:  python examples/virtual_screening.py [n_receptors]
      python examples/virtual_screening.py --workers 8 --backend processes
"""

import argparse

from repro.core.analysis import (
    collect_outcomes,
    compute_table3,
    format_table3,
    top_interactions,
    total_favorable,
)
from repro.core.datasets import CL0125_RECEPTORS, TABLE3_LIGANDS, pair_relation
from repro.core.scidock import SciDockConfig, run_scidock
from repro.provenance.queries import query1_activity_statistics, query2_files


def main(
    n_receptors: int = 5, workers: int = 4, backend: str = "threads"
) -> None:
    receptors = list(CL0125_RECEPTORS[:n_receptors])
    ligands = list(TABLE3_LIGANDS)
    pairs = pair_relation(receptors=receptors, ligands=ligands)
    print(f"screening {len(pairs)} receptor-ligand pairs "
          f"({n_receptors} receptors x {len(ligands)} ligands), "
          f"adaptive AD4/Vina routing, {workers} {backend} workers\n")

    report, store = run_scidock(
        pairs,
        SciDockConfig(scenario="adaptive", workers=workers, backend=backend),
    )
    print(f"workflow finished in {report.tet_seconds:.1f} s; "
          f"{report.counts}; {report.blocked} Hg receptors blocked\n")

    # Per-activity runtime profile (the paper's Query 1).
    print("activity profile (Query 1):")
    for s in query1_activity_statistics(store, report.wkfid):
        print(f"  {s.tag:<17} n={s.count:<4} avg={s.avg:7.3f} s "
              f"sum={s.sum:8.2f} s")

    # Where are the docking logs? (the paper's Query 2).
    logs = query2_files(store, report.wkfid, ".dlg") + query2_files(
        store, report.wkfid, ".log"
    )
    print(f"\n{len(logs)} docking logs recorded in provenance, e.g. "
          f"{logs[0].fdir}{logs[0].fname}" if logs else "no docking logs")

    # Biology: Table-3-style summary and the screening shortlist.
    outcomes = collect_outcomes(store, report.wkfid)
    rows = compute_table3(outcomes, ligands=tuple(ligands))
    print("\n" + format_table3(rows))
    for engine in sorted({o.engine for o in outcomes}):
        print(f"favorable interactions via {engine}: "
              f"{total_favorable(rows, engine)}")

    print("\nshortlist (best converged interactions):")
    for o in top_interactions(outcomes, n=5):
        print(f"  {o.receptor}-{o.ligand} [{o.engine}] "
              f"FEB {o.feb:+.2f} kcal/mol")


if __name__ == "__main__":
    # The __main__ guard matters: the processes backend spawns workers
    # that re-import this module.
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("n_receptors", nargs="?", type=int, default=5)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--backend", choices=("threads", "processes"), default="threads",
        help="activation executor: GIL-sharing threads or worker processes",
    )
    cli = parser.parse_args()
    main(cli.n_receptors, workers=cli.workers, backend=cli.backend)
