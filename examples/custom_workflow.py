"""Build your own workflow on the SciCumulus-like engine.

The paper closes with: "results presented in this paper can be
extrapolated to the development of workflows in other areas that also
require the exploration of large amounts of data." This example builds a
*non-docking* workflow from scratch — a parameter-sweep image-filter
pipeline stand-in — showing the general SWfMS API: activities with
templates and extractors, the XML spec round-trip, failure handling and
provenance analytics.

Run:  python examples/custom_workflow.py
"""

import numpy as np

from repro.provenance.queries import query1_activity_statistics
from repro.provenance.store import ProvenanceStore
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.engine import LocalEngine
from repro.workflow.extractor import JsonExtractor
from repro.workflow.fault import RetryPolicy
from repro.workflow.relation import Relation
from repro.workflow.spec import workflow_to_xml
from repro.workflow.template import ActivityTemplate


def synthesize(tup, ctx):
    """Activity 1: generate a synthetic signal for this parameter point."""
    rng = np.random.default_rng(tup["seed"])
    signal = np.sin(np.linspace(0, tup["freq"] * np.pi, 256))
    noisy = signal + rng.normal(scale=tup["noise"], size=signal.size)
    ctx.setdefault("signals", {})[tup["key"]] = noisy
    return [dict(tup)]


def denoise(tup, ctx):
    """Activity 2: a moving-average filter; fails on a corrupted input."""
    sig = ctx["signals"][tup["key"]]
    if tup["noise"] > 0.9:  # hopeless inputs crash the tool
        raise RuntimeError("filter diverged")
    kernel = np.ones(5) / 5
    ctx["signals"][tup["key"]] = np.convolve(sig, kernel, mode="same")
    return [dict(tup)]


def score(tup, ctx):
    """Activity 3: emit a quality metric through the extractor path."""
    sig = ctx["signals"][tup["key"]]
    clean = np.sin(np.linspace(0, tup["freq"] * np.pi, 256))
    mse = float(((sig - clean) ** 2).mean())
    out = dict(tup)
    out["mse"] = round(mse, 5)
    out["_extract_payload"] = f'{{"mse": {mse:.6f}}}'
    return [out]


def pick_best(tup, ctx):
    """Activity 4 (REDUCE): keep the best parameter point."""
    best = min(tup["__tuples__"], key=lambda t: t["mse"])
    return [best]


def main() -> None:
    workflow = Workflow(
        tag="SciSweep",
        description="generic parameter sweep on the SWfMS",
        activities=[
            Activity("synthesize", Operator.MAP, fn=synthesize,
                     template=ActivityTemplate(command="gen --seed %=seed%")),
            Activity("denoise", Operator.MAP, fn=denoise,
                     template=ActivityTemplate(command="filter --k 5")),
            Activity("score", Operator.MAP, fn=score,
                     extractors=[JsonExtractor(keys=("mse",))]),
            Activity("pick_best", Operator.REDUCE, fn=pick_best),
        ],
    )
    print("workflow spec (SciCumulus XML):")
    print(workflow_to_xml(workflow))

    sweep = Relation(
        "params",
        [
            {"key": f"p{f}-{n}", "seed": 7, "freq": f, "noise": n}
            for f in (2, 4, 8)
            for n in (0.1, 0.4, 1.2)  # noise 1.2 points will fail
        ],
    )
    store = ProvenanceStore()
    engine = LocalEngine(store, workers=4, retry=RetryPolicy(max_attempts=2))
    report = engine.run(workflow, sweep)

    print(f"swept {len(sweep)} parameter points in {report.tet_seconds:.2f} s; "
          f"{report.counts}")
    best = report.output[0]
    print(f"best point: freq={best['freq']} noise={best['noise']} "
          f"mse={best['mse']}")
    print("\nper-activity profile (the same Query 1 as SciDock):")
    for s in query1_activity_statistics(store, report.wkfid):
        print(f"  {s.tag:<11} n={s.count:<3} avg={s.avg * 1000:7.2f} ms")
    failed = store.failed_activations(report.wkfid)
    print(f"\n{len(failed)} failed activation executions "
          "(corrupted inputs, retried then dropped) — all visible in provenance")


if __name__ == "__main__":
    main()
