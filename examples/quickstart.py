"""Quickstart: dock one receptor-ligand pair end-to-end.

Covers the whole SciDock toolchain on a single pair — structure
generation (the offline RCSB-PDB stand-in), Babel conversion, MGLTools
preparation, AutoGrid maps, and docking with both AD4 and Vina.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.chem.babel import convert_molecule
from repro.chem.generate import generate_ligand, generate_receptor
from repro.docking.autodock import AutoDock4
from repro.docking.autogrid import AutoGrid
from repro.docking.box import GridBox
from repro.docking.dlg import write_dlg
from repro.docking.prepare import prepare_gpf, prepare_ligand, prepare_receptor
from repro.docking.vina import Vina


def main() -> None:
    # 1. Fetch structures (deterministic synthetic stand-ins for PDB/SDF).
    receptor = generate_receptor("2HHN")  # cathepsin S stand-in
    ligand = generate_ligand("0E6")
    print(f"receptor 2HHN: {len(receptor)} atoms "
          f"({receptor.metadata['size_class']} class)")
    print(f"ligand 0E6: {len(ligand)} atoms, formula {ligand.formula}")

    # 2. Babel: the ligand's SDF coordinates rendered as Sybyl MOL2.
    mol2 = convert_molecule(ligand, "mol2")
    print(f"babel: produced {len(mol2.splitlines())} lines of MOL2")

    # 3. MGLTools-style preparation (charges, AD4 types, torsion tree).
    rec_prep = prepare_receptor(receptor)
    lig_prep = prepare_ligand(ligand)
    print(f"prepared ligand: {lig_prep.torsdof} rotatable bonds, "
          f"types {lig_prep.atom_types}")

    # 4. Grid box over the binding pocket + AutoGrid maps.
    box = GridBox.around_pocket(
        np.array(receptor.metadata["pocket_center"]),
        receptor.metadata["pocket_radius"],
        spacing=0.6,
    )
    maps = AutoGrid().run(rec_prep.molecule, box, lig_prep.atom_types)
    print(f"autogrid: {len(maps.affinity)} affinity maps on a "
          f"{box.shape[0]}^3 grid")

    # 5. Prepare the GPF just like activity 4 would.
    gpf = prepare_gpf(rec_prep, lig_prep, box)
    print(f"gpf: {gpf.splitlines()[0]}")

    # 6. Dock with both engines (reduced search budgets so the example
    #    finishes in seconds; drop the params for full-depth search).
    from repro.core.scidock import FAST_AD4, FAST_VINA

    ad4_result = AutoDock4(maps, FAST_AD4).dock(lig_prep, seed=42)
    vina_result = Vina(rec_prep, box, FAST_VINA).dock(lig_prep, seed=42)
    print(f"\nAD4 : FEB {ad4_result.best_energy:+.2f} kcal/mol over "
          f"{ad4_result.evaluations} evaluations "
          f"({len(ad4_result.clusters)} clusters)")
    print(f"Vina: FEB {vina_result.best_energy:+.2f} kcal/mol, "
          f"{len(vina_result.poses)} binding modes")

    # 7. Optional: let pocket side-chains rotate during the search.
    from repro.docking.flex import FlexibleVina
    from repro.docking.mc import ILSConfig

    flex_engine = FlexibleVina(
        rec_prep, box, flex_radius=12.0,
        ils=ILSConfig(restarts=1, steps_per_restart=2, bfgs_iterations=6),
    )
    flex_result = flex_engine.dock(lig_prep, seed=42)
    print(f"Vina + {flex_engine.flexible.n_torsions} flexible side-chains: "
          f"FEB {flex_result.best_energy:+.2f} kcal/mol")

    # 8. The artifacts real AutoDock users look at.
    dlg = write_dlg(ad4_result)
    print(f"\nDLG log preview:\n" + "\n".join(dlg.splitlines()[:6]))


if __name__ == "__main__":
    main()
