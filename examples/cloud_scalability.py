"""Cloud scalability study: TET/speedup/efficiency plus dollar cost.

Reproduces the decision the paper's Section V.C supports: how many EC2
cores should a 10,000-pair docking campaign buy? Runs the simulated
2..128-core sweep for both engines, prints the TET/speedup/efficiency
series (Figs 7-9) and the simulated AWS bill per configuration — the
"more than 32 VMs may not bring the expected benefit, particularly if
financial costs are involved" trade-off.

Run:  python examples/cloud_scalability.py [n_pairs]
"""

import sys

from repro.perf.experiments import run_core_sweep


def main(n_pairs: int = 500) -> None:
    print(f"simulating SciDock over {n_pairs} receptor-ligand pairs "
          "(scale results x{:.0f} for the paper's 9,996)\n".format(9996 / n_pairs))
    for scenario in ("ad4", "vina"):
        sweep = run_core_sweep(scenario=scenario, n_pairs=n_pairs)
        print(f"--- SciDock with {scenario.upper()} ---")
        print(f"{'cores':>6} {'TET (h)':>9} {'speedup':>8} {'eff':>6} "
              f"{'improv%':>8} {'cost ($)':>9} {'$/speedup':>10}")
        base = sweep.baseline()
        for point, sp, eff, imp in zip(
            sweep.points, sweep.speedups(), sweep.efficiencies(),
            sweep.improvements(),
        ):
            cost = point.report.cost_usd
            print(f"{point.cores:>6} {point.tet_seconds / 3600:>9.2f} "
                  f"{sp:>8.2f} {eff:>6.2f} {imp:>8.1f} {cost:>9.2f} "
                  f"{cost / sp:>10.2f}")
        # The paper's conclusion: past 32 cores the marginal benefit drops.
        eff = dict(zip(sweep.core_counts, sweep.efficiencies()))
        knee = max((c for c in sweep.core_counts if eff[c] > 0.9), default=32)
        print(f"efficiency stays above 0.9 up to ~{knee} cores; beyond that "
              "you pay for idle scheduling overhead\n")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 500)
