"""Provenance deep-dive: runtime steering and W3C PROV export.

The paper's key claim is that *data provenance*, not just parallelism,
makes large-scale docking manageable: failures are found by SQL instead
of directory crawls, problematic inputs (Hg receptors) are identified
and blocked, and everything exports as standard W3C PROV.

This example injects failures into a simulated campaign, then plays the
scientist's role: find what failed, what was blocked, what the
re-execution cost, and produce a PROV-N document.

Run:  python examples/provenance_analysis.py
"""

from repro.perf.experiments import run_single_scale
from repro.provenance.prov_model import export_prov_document, to_prov_n
from repro.provenance.queries import (
    query1_activity_statistics,
    workflow_tet,
)


def main() -> None:
    # A 16-core campaign over the first 238 pairs (= every receptor once)
    # with the paper's 10% failure rate and the Hg looping pathology.
    res = run_single_scale(
        16, scenario="adaptive", n_pairs=238, failure_rate=0.10,
        block_known_loopers=True,
    )
    store, wkfid = res.store, res.report.wkfid
    print(f"simulated TET: {workflow_tet(store, wkfid) / 3600:.2f} h; "
          f"{res.report.total_activations} activations\n")

    # 1. "Which activations failed and had to be re-executed?"
    failed = store.failed_activations(wkfid)
    print(f"{len(failed)} failed activation executions "
          f"(re-executed automatically); first few:")
    for row in failed[:5]:
        print(f"  taskid={row['taskid']} tuple={row['tuple_key']} "
              f"attempt={row['attempt']} err={row['errormsg']}")

    # 2. "Which inputs were blocked by the Hg routine?"
    blocked = store.sql(
        """
        SELECT t.tuple_key, t.errormsg
        FROM hactivation t JOIN hactivity a ON t.actid = a.actid
        WHERE a.wkfid = ? AND t.status = 'BLOCKED'
        """,
        (wkfid,),
    )
    print(f"\n{len(blocked)} activations blocked before dispatch "
          "(receptors containing Hg):")
    for row in blocked[:5]:
        print(f"  {row['tuple_key']}: {row['errormsg']}")

    # 3. Runtime statistics per activity (Query 1 / Fig. 10).
    print("\nper-activity statistics (Query 1):")
    for s in query1_activity_statistics(store, wkfid):
        print(f"  {s.tag:<17} min={s.min:8.2f} max={s.max:8.2f} "
              f"avg={s.avg:8.2f} s  (n={s.count})")

    # 4. Status ledger and the re-execution bill.
    counts = store.counts_by_status(wkfid)
    print(f"\nactivation ledger: {counts}")
    wasted = store.sql(
        """
        SELECT COALESCE(SUM(t.endtime - t.starttime), 0) AS wasted
        FROM hactivation t JOIN hactivity a ON t.actid = a.actid
        WHERE a.wkfid = ? AND t.status = 'FAILED'
        """,
        (wkfid,),
    )[0]["wasted"]
    print(f"core-seconds burned by failed attempts: {wasted:.0f} "
          "(recovered by activation-level re-execution, not a full restart)")

    # 5. Standards-compliant export.
    doc = export_prov_document(store, wkfid)
    prov_n = to_prov_n(doc)
    print(f"\nW3C PROV export: {len(doc['activity'])} activities, "
          f"{len(doc['entity'])} entities, {len(doc['agent'])} agents "
          f"({len(prov_n.splitlines())} PROV-N lines)")
    print("\n".join(prov_n.splitlines()[:6]) + "\n  ...")


if __name__ == "__main__":
    main()
