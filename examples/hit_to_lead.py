"""Hit-to-lead: refinement and QSAR on top of a SciDock campaign.

Implements the paper's §V.D recipe end-to-end:

1. screen a receptor panel with SciDock (structure-based),
2. *refine* the best hits — redocking, minimization, a short MD anneal —
   to separate real binders from docking artifacts,
3. train a 2D QSAR model on the measured FEBs and rank the *whole*
   42-ligand library, shortlisting drug-like candidates for the next
   docking campaign.

Run:  python examples/hit_to_lead.py
"""

from repro.core.analysis import collect_outcomes, top_interactions
from repro.core.datasets import CL0125_RECEPTORS, CP_LIGANDS, TABLE3_LIGANDS, pair_relation
from repro.core.scidock import SciDockConfig, run_scidock
from repro.dynamics.refine import refine_pose
from repro.qsar.screen import describe_model, qsar_screen


def main() -> None:
    # --- 1. structure-based screen (small panel for demo speed) ---------
    receptors = list(CL0125_RECEPTORS[:4])
    ligands = ["042", "074", "0D6", "0E6", "ACE", "ALD", "93N", "2CA"]
    pairs = pair_relation(receptors=receptors, ligands=ligands)
    print(f"screening {len(pairs)} pairs on {len(receptors)} receptors ...")
    report, store = run_scidock(pairs, SciDockConfig(scenario="vina", workers=4))
    outcomes = collect_outcomes(store, report.wkfid)
    hits = top_interactions(outcomes, n=3)
    print("top hits:")
    for o in hits:
        print(f"  {o.receptor}-{o.ligand}: FEB {o.feb:+.2f} kcal/mol")

    # --- 2. refinement: redock + minimize + MD anneal --------------------
    print("\nrefining hits (redocking + minimization + MD):")
    for o in hits[:2]:
        result = refine_pose(
            o.receptor, o.ligand, screening_feb=o.feb, md_steps=40, seeds=(0, 1)
        )
        print("  " + result.summary())

    # --- 3. ligand-based QSAR over the whole library ---------------------
    training = {}
    for o in outcomes:
        best = training.get(o.ligand)
        if best is None or o.feb < best:
            training[o.ligand] = o.feb
    print(f"\ntraining QSAR on {len(training)} ligands' best FEBs ...")
    ranking = qsar_screen(training, CP_LIGANDS)
    print(f"cross-validated q2 = {ranking.q2:.2f}")
    print(describe_model(ranking.model))
    print("\npredicted-best ligands for the next campaign:")
    for lig, feb in ranking.top(6):
        tag = "drug-like" if ranking.druglike[lig] else "non-drug-like"
        seen = "trained" if lig in training else "new"
        print(f"  {lig}: predicted FEB {feb:+.2f} kcal/mol ({tag}, {seen})")


if __name__ == "__main__":
    main()
