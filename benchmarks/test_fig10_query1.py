"""Figure 10 — result of Query 1 over the provenance repository.

"Obtain the TET, statistical averages and biological information related
to the SciDock executions": per-activity min/max/sum/avg of activation
durations, straight SQL over the real Table-3 campaign's provenance.
"""

from repro.provenance.queries import query1_activity_statistics, query1_sql


def test_fig10_query1(benchmark, table3_campaign):
    report, store = table3_campaign["ad4"]
    stats = benchmark(query1_activity_statistics, store, report.wkfid)
    print("\nFIGURE 10: Query 1 result (per-activity runtime statistics)")
    print(f"{'tag':<18} {'min':>8} {'max':>8} {'sum':>10} {'avg':>8}  (seconds)")
    for s in stats:
        print(f"{s.tag:<18} {s.min:>8.3f} {s.max:>8.3f} {s.sum:>10.3f} {s.avg:>8.3f}")
    tags = {s.tag for s in stats}
    assert {
        "babel",
        "prepare_ligand",
        "prepare_receptor",
        "prepare_gpf",
        "autogrid",
        "docking",
    } <= tags
    # Raw SQL (the paper's literal query) agrees with the typed helper.
    rows = store.sql(query1_sql(), (report.wkfid,))
    raw = {r["tag"]: r["avg"] for r in rows}
    for s in stats:
        assert abs(raw[s.tag] - s.avg) < 1e-9
    # Every min <= avg <= max.
    for s in stats:
        assert s.min <= s.avg <= s.max
