"""Figure 5 — histogram of SciDock activity execution times.

The paper derives the histogram from the provenance repository with a
single SQL query (epoch differences of activation start/end). We do the
same over the 16-core simulated run and print the binned distribution.
"""

import numpy as np

from repro.provenance.queries import activation_durations


def test_fig5_histogram(benchmark, sixteen_core_run):
    res = sixteen_core_run
    durations = benchmark(
        activation_durations, res.store, res.report.wkfid
    )
    durations = np.array(durations)
    mean, std = durations.mean(), durations.std()
    print(
        f"\nFIGURE 5: {len(durations)} activations; "
        f"avg {mean:.1f} s, std {std:.1f} s "
        "(paper reports avg 1703.5 s / std 108.3 s on EC2-era hardware; "
        "shape, not scale, is the target)"
    )
    edges = np.percentile(durations, [0, 25, 50, 75, 90, 99, 100])
    hist, bins = np.histogram(durations, bins=12)
    width = max(hist)
    for count, lo, hi in zip(hist, bins, bins[1:]):
        bar = "#" * max(1, int(40 * count / width)) if count else ""
        print(f"  {lo:8.1f} - {hi:8.1f} s | {count:>6} {bar}")
    print(
        "  percentiles (s): "
        + ", ".join(f"p{p}={v:.1f}" for p, v in zip((0, 25, 50, 75, 90, 99, 100), edges))
    )
    # Shape assertions: heterogeneous, right-skewed distribution.
    assert len(durations) > 1000
    assert np.median(durations) < mean  # long right tail
    assert durations.max() > 5 * np.median(durations)
