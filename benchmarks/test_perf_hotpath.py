"""Hot-path micro-benchmarks: batched scoring and executor backends.

Two measurements start the repo's performance trajectory:

* scalar-vs-batched population scoring — the GA generation loop's inner
  cost, a population of genotypes scored one-by-one versus through the
  vectorized objective (`evaluate_batch` -> `coords_batch` -> grid
  gather), and
* thread-vs-process engine throughput — the same small pair sweep run
  through ``LocalEngine`` on both executor backends.

Results land in ``BENCH_hotpath.json`` at the repo root so successive
PRs can be compared machine-readably.

Environment knobs:

* ``REPRO_BENCH_SMOKE=1`` — check-only mode for CI: tiny workloads, the
  numbers are recorded but the speedup assertions are skipped (shared CI
  runners make timing assertions flaky).

The process-beats-threads assertion additionally requires >= 2 cores
(the acceptance criterion's own precondition): on a single core the
process backend only adds spawn and pickling overhead.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import TABLE3_RECEPTORS  # noqa: F401  (path side effect)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
RESULTS_PATH = Path(__file__).parent.parent / "BENCH_hotpath.json"


def _record(section: str, payload: dict) -> None:
    """Merge one section into BENCH_hotpath.json (read-modify-write)."""
    results = {}
    if RESULTS_PATH.exists():
        results = json.loads(RESULTS_PATH.read_text())
    results[section] = payload
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_batched_population_scoring():
    """Scoring a GA population through evaluate_batch vs a scalar loop."""
    from repro.chem.generate import generate_ligand, generate_receptor
    from repro.docking.autogrid import AutoGrid
    from repro.docking.box import GridBox
    from repro.docking.conformation import Conformation
    from repro.docking.objective import PoseEnergyObjective
    from repro.docking.prepare import prepare_ligand, prepare_receptor
    from repro.docking.scoring_ad4 import AD4Scorer

    receptor = generate_receptor("2HHN")
    lig = prepare_ligand(generate_ligand("0E6"))  # 25 atoms, 12 torsions
    box = GridBox.around_pocket(
        np.array(receptor.metadata["pocket_center"]),
        receptor.metadata["pocket_radius"],
        spacing=0.8,
    )
    maps = AutoGrid().run(
        prepare_receptor(receptor).molecule, box, lig.atom_types
    )
    scorer = AD4Scorer(maps, lig.molecule)
    objective = PoseEnergyObjective(lig.tree, scorer.docking_energy_batch)

    population = 16 if SMOKE else 64
    rng = np.random.default_rng(0)
    genotypes = np.stack([
        Conformation.random(
            lig.tree.n_torsions, rng, center=box.center
        ).vector
        for _ in range(population)
    ])

    def scalar_loop():
        return np.array([objective(g) for g in genotypes])

    def batched():
        return objective.evaluate_batch(genotypes)

    assert np.array_equal(scalar_loop(), batched())  # parity before timing
    scalar_s = _best_of(scalar_loop)
    batched_s = _best_of(batched)
    speedup = scalar_s / batched_s

    payload = {
        "population": population,
        "ligand_atoms": len(lig.molecule.atoms),
        "torsions": lig.tree.n_torsions,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": round(speedup, 2),
        "asserted": not SMOKE,
    }
    _record("population_scoring", payload)
    print(
        f"\npopulation scoring: scalar {scalar_s * 1e3:.1f} ms, "
        f"batched {batched_s * 1e3:.1f} ms -> {speedup:.1f}x"
    )
    if not SMOKE:
        assert population >= 50 and len(lig.molecule.atoms) >= 20
        assert speedup >= 3.0, f"batched path only {speedup:.2f}x faster"


def test_engine_backend_throughput():
    """LocalEngine thread vs process backend on a small pair sweep."""
    from repro.core.datasets import CL0125_RECEPTORS, TABLE3_LIGANDS, pair_relation
    from repro.core.scidock import SciDockConfig, run_scidock

    receptors = list(CL0125_RECEPTORS[:1 if SMOKE else 2])
    ligands = list(TABLE3_LIGANDS[:2 if SMOKE else 4])
    cpu = os.cpu_count() or 1
    workers = max(2, min(4, cpu))

    tets = {}
    for backend in ("threads", "processes"):
        pairs = pair_relation(receptors=receptors, ligands=ligands)
        report, store = run_scidock(
            pairs,
            SciDockConfig(scenario="adaptive", workers=workers, backend=backend),
        )
        store.close()
        assert report.counts.get("FINISHED", 0) > 0
        tets[backend] = report.tet_seconds

    speedup = tets["threads"] / tets["processes"]
    multicore = cpu >= 2

    # Oversubscription variant: a sleep-bound workflow (activations wait
    # on I/O, not the CPU) must speed up with extra workers even on a
    # single-core host — this replaces the old permanent skip on
    # cpu_count=1 machines with an assertion that always runs.
    from repro.provenance.store import ProvenanceStore
    from repro.workflow.activity import Activity, Operator, Workflow
    from repro.workflow.engine import LocalEngine
    from repro.workflow.relation import Relation

    nap_s = 0.03 if SMOKE else 0.1
    n_naps = 10

    def _nap(t, c):
        time.sleep(nap_s)
        return [dict(t)]

    over = {}
    for label, nap_workers in (("serial", 1), ("oversubscribed", 5)):
        wf = Workflow("naps", [Activity("nap", Operator.MAP, fn=_nap)])
        rel = Relation("in", [{"key": f"k{i}"} for i in range(n_naps)])
        report = LocalEngine(
            ProvenanceStore(), workers=nap_workers, backend="threads"
        ).run(wf, rel)
        assert report.counts.get("FINISHED", 0) == n_naps
        over[label] = report.tet_seconds
    over_speedup = over["serial"] / over["oversubscribed"]

    payload = {
        "pairs": len(receptors) * len(ligands),
        "workers": workers,
        "cpu_count": cpu,
        "threads_tet_s": tets["threads"],
        "processes_tet_s": tets["processes"],
        "process_speedup": round(speedup, 2),
        "oversubscription": {
            "naps": n_naps,
            "nap_s": nap_s,
            "serial_tet_s": over["serial"],
            "oversubscribed_tet_s": over["oversubscribed"],
            "speedup": round(over_speedup, 2),
            "asserted": True,
        },
        "asserted": multicore and not SMOKE,
    }
    # A sub-1.0 "speedup" on one core is expected spawn/pickle overhead,
    # not a regression — record why the assertion did not run instead of
    # leaving a silently-false ``asserted``.
    if not multicore:
        payload["skipped_reason"] = (
            f"cpu_count={cpu}: process backend cannot beat threads on a "
            "single core (spawn + pickling overhead only); the sleep-bound "
            "oversubscription assertion below still ran"
        )
    elif SMOKE:
        payload["skipped_reason"] = "REPRO_BENCH_SMOKE=1"
    _record("engine_backends", payload)
    print(
        f"\nengine backends ({payload['pairs']} pairs, {workers} workers, "
        f"{cpu} cores): threads {tets['threads']:.1f} s, "
        f"processes {tets['processes']:.1f} s; oversubscription "
        f"{over['serial']:.2f} s -> {over['oversubscribed']:.2f} s "
        f"({over_speedup:.1f}x)"
    )
    # Sleep-bound work is timing-robust: asserted on every host, SMOKE or
    # not — 10 naps on 5 workers must beat 10 naps on 1 by a wide margin.
    assert over_speedup >= 1.3, (
        f"oversubscribed threads only {over_speedup:.2f}x on {cpu} cores"
    )
    if multicore and not SMOKE:
        assert tets["processes"] < tets["threads"], (
            f"process backend slower on {cpu} cores: {tets}"
        )


def test_stage_pipelining_makespan():
    """Barrier vs pipelined dispatch on a skewed-cost two-stage workflow.

    One straggler dominates the dock stage. Under per-activity barriers
    the straggler cannot start docking until *every* tuple has finished
    prep, so its long tail stacks on top of the prep phase; pipelined
    dispatch lets it flow into docking the moment its own prep is done,
    hiding the prep of every other tuple behind the straggler's dock.
    Both modes run under the greedy cost scheduler (SciCumulus' native
    policy — longest expected activation first), so the only variable is
    barrier placement: the scheduler *wants* to dispatch the straggler's
    dock early, but only pipelining makes it ready early.
    """
    from repro.provenance.store import ProvenanceStore
    from repro.workflow.activity import Activity, Operator, Workflow
    from repro.workflow.engine import LocalEngine
    from repro.workflow.relation import Relation
    from repro.workflow.scheduler import GreedyCostScheduler

    prep_s = 0.02 if SMOKE else 0.1
    dock_straggler_s = 0.2 if SMOKE else 1.0
    dock_s = 0.01 if SMOKE else 0.05
    n_ligands = 8

    def prep(t, c):
        time.sleep(prep_s)
        return [dict(t)]

    def dock(t, c):
        time.sleep(dock_straggler_s if t["key"] == "lig0" else dock_s)
        return [dict(t)]

    def workflow():
        return Workflow(
            "skewed",
            [
                Activity("prep", Operator.MAP, fn=prep, cost_fn=lambda t: prep_s),
                Activity(
                    "dock", Operator.MAP, fn=dock,
                    cost_fn=lambda t: dock_straggler_s
                    if t["key"] == "lig0" else dock_s,
                ),
            ],
        )

    tets = {}
    for mode, pipelined in (("barrier", False), ("pipelined", True)):
        rel = Relation("in", [{"key": f"lig{i}"} for i in range(n_ligands)])
        engine = LocalEngine(
            ProvenanceStore(), workers=2, pipeline=pipelined,
            scheduler=GreedyCostScheduler(),
        )
        report = engine.run(workflow(), rel)
        assert report.counts.get("FINISHED", 0) == 2 * n_ligands
        tets[mode] = report.tet_seconds

    speedup = tets["barrier"] / tets["pipelined"]
    payload = {
        "ligands": n_ligands,
        "workers": 2,
        "prep_s": prep_s,
        "dock_straggler_s": dock_straggler_s,
        "dock_s": dock_s,
        "barrier_tet_s": tets["barrier"],
        "pipelined_tet_s": tets["pipelined"],
        "pipelining_speedup": round(speedup, 2),
        "asserted": not SMOKE,
    }
    _record("stage_pipelining", payload)
    print(
        f"\nstage pipelining ({n_ligands} ligands, 2 workers): "
        f"barrier {tets['barrier']:.2f} s, "
        f"pipelined {tets['pipelined']:.2f} s -> {speedup:.2f}x"
    )
    if not SMOKE:
        assert tets["pipelined"] < tets["barrier"], (
            f"pipelined dispatch not faster: {tets}"
        )


def test_artifact_plane_build_accounting(tmp_path):
    """Map builds and cache hits across the shared artifact plane.

    Two measurements, both deterministic (asserted even in smoke mode):

    * a process-backend screen must build each receptor's map bundle at
      most once across every worker (`builds_by_artifact` <= 1), and
    * a second screen against the same ``--map-cache`` directory must
      serve every bundle from disk — zero AutoGrid reruns.
    """
    from repro.core.datasets import CL0125_RECEPTORS, TABLE3_LIGANDS, pair_relation
    from repro.core.scidock import SciDockConfig, run_scidock

    receptors = list(CL0125_RECEPTORS[:2])
    ligands = list(TABLE3_LIGANDS[:2 if SMOKE else 3])
    cache_dir = str(tmp_path / "mapcache")

    def screen():
        pairs = pair_relation(receptors=receptors, ligands=ligands)
        report, store = run_scidock(
            pairs,
            SciDockConfig(
                scenario="adaptive",
                workers=2,
                backend="processes",
                map_cache=cache_dir,
            ),
        )
        store.close()
        assert report.succeeded
        return report

    cold = screen().artifact_stats
    warm = screen().artifact_stats

    assert cold["builds_by_artifact"]
    assert max(cold["builds_by_artifact"].values()) == 1
    assert cold["builds"] >= len(receptors)
    assert warm["builds"] == 0 and warm["disk_hits"] > 0

    payload = {
        "receptors": len(receptors),
        "ligands": len(ligands),
        "cold_builds": cold["builds"],
        "cold_shm_hits": cold["shm_hits"],
        "cold_hit_rate": cold["hit_rate"],
        "warm_builds": warm["builds"],
        "warm_disk_hits": warm["disk_hits"],
        "warm_hit_rate": warm["hit_rate"],
        "max_builds_per_artifact": max(cold["builds_by_artifact"].values()),
        "asserted": True,
    }
    _record("artifact_plane", payload)
    print(
        f"\nartifact plane ({len(receptors)}x{len(ligands)} pairs): "
        f"cold {cold['builds']} builds / {cold['shm_hits']} shm hits "
        f"(hit rate {cold['hit_rate']:.2f}), "
        f"warm {warm['builds']} builds / {warm['disk_hits']} disk hits"
    )


def _kernel_fixture():
    """Shared receptor/ligand/box setup for the kernel benchmarks."""
    from repro.chem.generate import generate_ligand, generate_receptor
    from repro.docking.box import GridBox
    from repro.docking.prepare import prepare_ligand, prepare_receptor

    receptor = generate_receptor("2HHN")
    rec_prep = prepare_receptor(receptor)
    lig = prepare_ligand(generate_ligand("0E6"))
    box = GridBox.around_pocket(
        np.array(receptor.metadata["pocket_center"]),
        receptor.metadata["pocket_radius"],
        spacing=0.8,
    )
    return rec_prep, lig, box


def test_kernel_table_scoring():
    """Population scoring through table kernels vs the analytic sweep.

    The map-free Vina scorer is the purest pairwise hot path: every pose
    batch evaluates ligand-x-receptor analytic terms. Table mode replaces
    the exp/clip expressions with row interpolation and the dense
    distance tensor with a cell-list gather.
    """
    from repro.docking.etables import shared_etables
    from repro.docking.scoring_vina import VinaScorer

    rec_prep, lig, box = _kernel_fixture()
    etables = shared_etables()
    analytic = VinaScorer(rec_prep.molecule, lig.molecule, box)
    tables = VinaScorer(
        rec_prep.molecule, lig.molecule, box, etables=etables
    )

    population = 32 if SMOKE else 128
    L = len(lig.molecule.atoms)
    rng = np.random.default_rng(0)
    base = lig.molecule.coords - lig.molecule.coords.mean(axis=0) + box.center
    batch = base[None] + rng.normal(0.0, 1.5, size=(population, L, 3))

    ea = analytic.search_energy_batch(batch)
    et = tables.search_energy_batch(batch)
    # Parity before timing: documented tolerance |dE| <= 2e-3 + 2% |E|.
    assert (np.abs(ea - et) <= 2e-3 + 2e-2 * np.abs(ea)).all()

    analytic_s = _best_of(lambda: analytic.search_energy_batch(batch))
    tables_s = _best_of(lambda: tables.search_energy_batch(batch))
    speedup = analytic_s / tables_s

    payload = {
        "population": population,
        "ligand_atoms": L,
        "receptor_atoms": int(analytic.rec_coords.shape[0]),
        "analytic_s": analytic_s,
        "tables_s": tables_s,
        "speedup": round(speedup, 2),
        "asserted": not SMOKE,
    }
    if SMOKE:
        payload["skipped_reason"] = "REPRO_BENCH_SMOKE=1"
    _record("kernel_tables", payload)
    print(
        f"\nkernel tables ({population} poses x {L} atoms): "
        f"analytic {analytic_s * 1e3:.1f} ms, "
        f"tables {tables_s * 1e3:.1f} ms -> {speedup:.2f}x"
    )
    if not SMOKE:
        assert speedup > 1.0, f"table kernel only {speedup:.2f}x"


def test_map_build_pruning():
    """AutoGrid cold map build: cell-list tables vs the full sweep.

    The per-receptor setup cost the campaign amortizes over 42 ligands —
    the paper's preparation-phase argument. The pruned build touches only
    in-cutoff (point, atom) pairs and reads energies from lookup rows.
    """
    from repro.docking.autogrid import AutoGrid
    from repro.docking.etables import shared_etables

    rec_prep, lig, box = _kernel_fixture()
    types = lig.atom_types if SMOKE else ("C", "A", "N", "NA", "OA", "SA", "HD")
    etables = shared_etables()
    # Warm the table rows so the benchmark isolates the per-build cost
    # (the rows are built once per process and shared by every receptor).
    AutoGrid(etables=etables).run(rec_prep.molecule, box, types)

    analytic_s = _best_of(
        lambda: AutoGrid().run(rec_prep.molecule, box, types)
    )
    pruned_s = _best_of(
        lambda: AutoGrid(etables=etables).run(rec_prep.molecule, box, types)
    )
    speedup = analytic_s / pruned_s

    maps_a = AutoGrid().run(rec_prep.molecule, box, types)
    maps_t = AutoGrid(etables=etables).run(rec_prep.molecule, box, types)
    for t in maps_a.affinity:
        err = np.abs(maps_a.affinity[t] - maps_t.affinity[t])
        assert (err <= 2e-2 + 2e-2 * np.abs(maps_a.affinity[t])).all(), t

    payload = {
        "grid_points": int(np.prod(box.shape)),
        "map_types": len(types),
        "analytic_s": analytic_s,
        "pruned_s": pruned_s,
        "speedup": round(speedup, 2),
        "asserted": not SMOKE,
    }
    if SMOKE:
        payload["skipped_reason"] = "REPRO_BENCH_SMOKE=1"
    _record("map_build_pruning", payload)
    print(
        f"\nmap build pruning ({payload['grid_points']} points, "
        f"{len(types)} maps): analytic {analytic_s * 1e3:.0f} ms, "
        f"pruned {pruned_s * 1e3:.0f} ms -> {speedup:.2f}x"
    )
    if not SMOKE:
        assert speedup > 1.0, f"pruned build only {speedup:.2f}x"


def test_straggler_speculation():
    """TET with and without speculative re-execution of a 10x straggler.

    One tuple's first attempt takes ten times the nominal service time
    (a slow VM, a cold cache — the paper's heterogeneous-cloud tail).
    Without speculation the run waits the straggler out; with a warmed
    online cost service the engine launches a duplicate on an idle slot
    once the attempt blows past the learned p95, and the duplicate's
    second invocation takes the fast path.
    """
    import threading

    from repro.perf.online_cost import OnlineCostService
    from repro.provenance.store import ProvenanceStore
    from repro.workflow.activity import Activity, Operator, Workflow
    from repro.workflow.engine import LocalEngine
    from repro.workflow.relation import Relation

    dock_s = 0.05 if SMOKE else 0.15
    straggler_s = 10 * dock_s
    n_tuples = 8

    def make_dock():
        lock = threading.Lock()
        calls: dict[str, int] = {}

        def dock(t, c):
            with lock:
                n = calls.get(t["key"], 0)
                calls[t["key"]] = n + 1
            if t["slow"] and n == 0:
                # Sleep on the cancellation token so the losing twin is
                # released as soon as the engine aborts it.
                c["cancel_token"].sleep(straggler_s)
            else:
                time.sleep(dock_s)
            return [{"key": t["key"]}]

        return dock

    def warm_service():
        svc = OnlineCostService(speculation_quantile=0.95)
        for _ in range(40):
            svc.observe("dock", {}, dock_s)
        return svc

    tets = {}
    spec_counts = {}
    # Three workers: the straggler pins one slot while the fast tuples
    # drain through the other two, so an idle slot (the speculation
    # precondition) opens well before the straggler would finish.
    for mode, service in (("baseline", None), ("speculative", warm_service())):
        wf = Workflow(
            "straggler", [Activity("dock", Operator.MAP, fn=make_dock())]
        )
        rel = Relation(
            "in", [{"key": f"k{i}", "slow": i == 0} for i in range(n_tuples)]
        )
        engine = LocalEngine(
            ProvenanceStore(), workers=3, cost_service=service
        )
        report = engine.run(wf, rel)
        assert report.counts.get("FINISHED", 0) == n_tuples
        tets[mode] = report.tet_seconds
        spec_counts[mode] = report.speculative_won

    improvement = tets["baseline"] / tets["speculative"]
    payload = {
        "tuples": n_tuples,
        "workers": 3,
        "dock_s": dock_s,
        "straggler_s": straggler_s,
        "baseline_tet_s": tets["baseline"],
        "speculative_tet_s": tets["speculative"],
        "speculative_won": spec_counts["speculative"],
        "tet_improvement": round(improvement, 2),
        "asserted": not SMOKE,
    }
    if SMOKE:
        payload["skipped_reason"] = "REPRO_BENCH_SMOKE=1"
    _record("straggler_speculation", payload)
    print(
        f"\nstraggler speculation ({n_tuples} tuples, 10x straggler): "
        f"baseline {tets['baseline']:.2f} s, "
        f"speculative {tets['speculative']:.2f} s -> {improvement:.2f}x"
    )
    assert spec_counts["baseline"] == 0
    if not SMOKE:
        assert spec_counts["speculative"] >= 1
        assert improvement >= 1.3, (
            f"speculation only improved TET {improvement:.2f}x: {tets}"
        )


def test_greedy_learned_costs():
    """Makespan: FIFO vs greedy placement fed by learned size-class costs.

    One large-receptor dock dominates the batch (6x the small ones). The
    cost service has seen both size classes, so the greedy scheduler
    fronts the long activation; FIFO dispatches in arrival order and
    strands it at the tail of the run.
    """
    from repro.perf.online_cost import OnlineCostService
    from repro.provenance.store import ProvenanceStore
    from repro.workflow.activity import Activity, Operator, Workflow
    from repro.workflow.engine import LocalEngine
    from repro.workflow.relation import Relation
    from repro.workflow.scheduler import GreedyCostScheduler

    # Hash-derived size classes (repro.chem.generate.receptor_size_class):
    # "1ABC" -> large, "2DEF" -> small.
    long_s = 0.2 if SMOKE else 0.6
    short_s = long_s / 6.0
    n_shorts = 6

    def dock(t, c):
        time.sleep(long_s if t["receptor_id"] == "1ABC" else short_s)
        return [{"key": t["key"]}]

    def warm_service():
        svc = OnlineCostService(
            prior="provenance", speculation_quantile=1.0
        )
        for _ in range(10):
            svc.observe("dock", {"receptor_id": "1ABC"}, long_s)
            svc.observe("dock", {"receptor_id": "2DEF"}, short_s)
        return svc

    def relation():
        # Arrival order puts the long job last — worst case for FIFO.
        rel = Relation(
            "in",
            [
                {"key": f"s{i}", "receptor_id": "2DEF"}
                for i in range(n_shorts)
            ],
        )
        rel.append({"key": "big", "receptor_id": "1ABC"})
        return rel

    tets = {}
    for mode, scheduler, service in (
        ("fifo", None, None),
        ("greedy_learned", GreedyCostScheduler(), warm_service()),
    ):
        wf = Workflow(
            "placement", [Activity("dock", Operator.MAP, fn=dock)]
        )
        engine = LocalEngine(
            ProvenanceStore(), workers=2,
            scheduler=scheduler, cost_service=service,
        )
        report = engine.run(wf, relation())
        assert report.counts.get("FINISHED", 0) == n_shorts + 1
        tets[mode] = report.tet_seconds

    speedup = tets["fifo"] / tets["greedy_learned"]
    payload = {
        "shorts": n_shorts,
        "workers": 2,
        "long_s": long_s,
        "short_s": short_s,
        "fifo_tet_s": tets["fifo"],
        "greedy_learned_tet_s": tets["greedy_learned"],
        "speedup": round(speedup, 2),
        "asserted": not SMOKE,
    }
    if SMOKE:
        payload["skipped_reason"] = "REPRO_BENCH_SMOKE=1"
    _record("greedy_learned_costs", payload)
    print(
        f"\ngreedy learned costs ({n_shorts}+1 docks, 2 workers): "
        f"fifo {tets['fifo']:.2f} s, "
        f"greedy {tets['greedy_learned']:.2f} s -> {speedup:.2f}x"
    )
    if not SMOKE:
        assert tets["greedy_learned"] < tets["fifo"], (
            f"learned-cost greedy not faster than FIFO: {tets}"
        )


def test_distributed_scatter_throughput():
    """Single-process threads vs a 2-node TCP scatter on sleep-bound work.

    The activation sleeps (an I/O- or license-bound docking stage), so
    scattering across two worker nodes — four remote slots against two
    local threads — must win even on a single-core host: the speedup
    comes from concurrency in the sleep, not from CPU parallelism. The
    distributed leg runs three wire variants — the legacy one-frame-
    per-task protocol, TASK_BATCH framing, and TASK_BATCH + zlib — and
    breaks out what each transport costs per tuple: wire bytes
    (serialization) and the non-sleep residue of the makespan (protocol
    overhead — handshakes, credit round-trips, heartbeats). Batched +
    compressed frames must amortize at least 2x of both.
    """
    import pickle
    import signal
    import subprocess
    import sys

    from repro.provenance.store import ProvenanceStore
    from repro.workflow.activity import Activity, Operator, Workflow
    from repro.workflow.engine import LocalEngine
    from repro.workflow.relation import Relation
    from repro.workflow.worker import sleep_activation

    sleep_s = 0.1 if SMOKE else 0.2
    n_tuples = 8 if SMOKE else 16
    local_workers = 2
    n_nodes, slots = 2, 2

    def _wf():
        return Workflow(
            "scatter",
            [Activity("nap", Operator.MAP, fn=sleep_activation)],
        )

    def _rel():
        return Relation(
            "in",
            [
                {"key": f"s{i:02d}", "receptor_id": f"R{i % 2}",
                 "sleep_s": sleep_s}
                for i in range(n_tuples)
            ],
        )

    local_report = LocalEngine(
        ProvenanceStore(), workers=local_workers, backend="threads"
    ).run(_wf(), _rel(), context={"shared_maps": False})
    assert local_report.counts.get("FINISHED", 0) == n_tuples

    from conftest import SRC

    def _scatter(wire_kwargs):
        engine = LocalEngine(
            ProvenanceStore(),
            workers=local_workers,
            backend="distributed",
            min_nodes=n_nodes,
            join_timeout=60.0,
            **wire_kwargs,
        )
        host, port = engine.director_address
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(SRC), env.get("PYTHONPATH", "")]
        )
        nodes = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.workflow.worker",
                    "--join", f"{host}:{port}",
                    "--slots", str(slots),
                    "--node-id", f"bench-{i}",
                ],
                env=env,
            )
            for i in range(n_nodes)
        ]
        try:
            # Node boot (python startup + TCP join) is provisioning, not
            # scatter throughput: let both nodes register before the
            # timed run so TET measures dispatch + transport + execution
            # only. (Nodes turn *ready* only once the run ships them its
            # context, so poll registration, not Director.wait_for_nodes.)
            boot_deadline = time.monotonic() + 60.0
            while len(engine._director._nodes) < n_nodes:
                assert time.monotonic() < boot_deadline, "nodes never joined"
                time.sleep(0.02)
            report = engine.run(
                _wf(), _rel(), context={"shared_maps": False}
            )
        finally:
            engine.shutdown()
            for proc in nodes:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.send_signal(signal.SIGKILL)
                    proc.wait(timeout=10.0)
        assert report.counts.get("FINISHED", 0) == n_tuples
        assert report.nodes_joined == n_nodes
        return report

    batch_kwargs = {"batch_size": 8, "batch_linger": 0.005}
    reports = {
        "unbatched": _scatter({}),
        "batched": _scatter(dict(batch_kwargs)),
        "batched_zlib": _scatter(
            dict(batch_kwargs, compress_frames=True)
        ),
    }
    dist_report = reports["unbatched"]

    speedup = local_report.tet_seconds / dist_report.tet_seconds
    # Ideal makespans given perfect packing of equal-length naps.
    import math

    local_ideal = math.ceil(n_tuples / local_workers) * sleep_s
    dist_ideal = math.ceil(n_tuples / (n_nodes * slots)) * sleep_s
    tuple_bytes = len(
        pickle.dumps(_rel()[0], protocol=pickle.HIGHEST_PROTOCOL)
    )

    def _variant(report):
        wire = report.wire_bytes_sent + report.wire_bytes_received
        return {
            "tet_s": report.tet_seconds,
            "wire_bytes_sent": report.wire_bytes_sent,
            "wire_bytes_received": report.wire_bytes_received,
            "wire_bytes_per_tuple": round(wire / n_tuples, 1),
            "wire_bytes_saved": report.wire_bytes_saved,
            "compression_ratio": round(report.compression_ratio, 2),
            "batches_sent": report.batches_sent,
            "avg_batch_fill": round(report.avg_batch_fill, 2),
            "overhead_s": round(report.tet_seconds - dist_ideal, 4),
            "overhead_per_tuple_s": round(
                (report.tet_seconds - dist_ideal) / n_tuples, 5
            ),
        }

    variants = {name: _variant(rep) for name, rep in reports.items()}
    base = variants["unbatched"]
    best = variants["batched_zlib"]
    wire_reduction = (
        base["wire_bytes_per_tuple"] / best["wire_bytes_per_tuple"]
        if best["wire_bytes_per_tuple"]
        else float("inf")
    )
    overhead_reduction = (
        base["overhead_per_tuple_s"] / best["overhead_per_tuple_s"]
        if best["overhead_per_tuple_s"] > 0
        else float("inf")
    )
    payload = {
        "tuples": n_tuples,
        "sleep_s": sleep_s,
        "local_workers": local_workers,
        "nodes": n_nodes,
        "slots_per_node": slots,
        "threads_tet_s": local_report.tet_seconds,
        "distributed_tet_s": dist_report.tet_seconds,
        "speedup": round(speedup, 2),
        "tuple_pickle_bytes": tuple_bytes,
        "ideal_tet_s": dist_ideal,
        "variants": variants,
        "wire_bytes_reduction": round(wire_reduction, 2),
        "overhead_reduction": round(overhead_reduction, 2),
        "asserted": True,
        "full_2x_bar_asserted": not SMOKE,
    }
    _record("distributed_scatter", payload)
    print(
        f"\ndistributed scatter ({n_tuples} naps x {sleep_s} s): "
        f"threads({local_workers}) {local_report.tet_seconds:.2f} s "
        f"(ideal {local_ideal:.2f}), {n_nodes}x{slots} nodes "
        f"{dist_report.tet_seconds:.2f} s (ideal {dist_ideal:.2f}) "
        f"-> {speedup:.2f}x"
    )
    for name, var in variants.items():
        print(
            f"  {name}: {var['wire_bytes_per_tuple']} wire B/tuple, "
            f"{var['overhead_per_tuple_s'] * 1e3:.2f} ms overhead/tuple, "
            f"fill {var['avg_batch_fill']}"
        )
    # Sleep-bound: asserted on every host, single-core included. The
    # scatter doubles the slot count, so demand a real win.
    assert speedup >= 1.2, (
        f"2-node scatter only {speedup:.2f}x over "
        f"{local_workers}-thread local: {payload}"
    )
    # The batched protocol actually batched (and the compressed leg
    # actually compressed) — deterministic, asserted everywhere.
    assert variants["batched"]["batches_sent"] >= 1
    assert variants["batched"]["avg_batch_fill"] > 1.0
    assert variants["batched_zlib"]["wire_bytes_saved"] > 0
    # Batched + compressed frames must amortize the per-tuple wire cost
    # at least 2x. Byte counts are near-deterministic, but the fixed
    # per-run frames (HELLO/SETUP/stats) dilute the ratio on the tiny
    # SMOKE relation, so the full 2x bar applies to full-size runs.
    wire_floor = 1.5 if SMOKE else 2.0
    assert wire_reduction >= wire_floor, (
        f"batched+zlib wire bytes only {wire_reduction:.2f}x lower "
        f"(floor {wire_floor}x): {variants}"
    )
    if not SMOKE:
        # Timing half of the claim: protocol overhead (credit round
        # trips, per-frame latency) must also drop at least 2x.
        assert overhead_reduction >= 2.0, (
            f"batched+zlib overhead only {overhead_reduction:.2f}x "
            f"lower: {variants}"
        )
