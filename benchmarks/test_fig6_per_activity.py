"""Figure 6 — execution time per activity (16-core execution).

The paper's bar chart: total busy seconds per activity, with the last
activity (docking) the most compute-intensive. Regenerated via Query 1
over the 16-core simulated run.
"""

from repro.provenance.queries import query1_activity_statistics


def test_fig6_per_activity(benchmark, sixteen_core_run):
    res = sixteen_core_run
    stats = benchmark(query1_activity_statistics, res.store, res.report.wkfid)
    order = [
        "babel",
        "prepare_ligand",
        "prepare_receptor",
        "prepare_gpf",
        "autogrid",
        "docking_filter",
        "prepare_docking",
        "docking",
    ]
    by_tag = {s.tag: s for s in stats}
    print("\nFIGURE 6: execution time per activity (16 cores)")
    total = sum(s.sum for s in stats)
    for tag in order:
        s = by_tag[tag]
        share = s.sum / total * 100
        bar = "#" * max(1, int(share / 2))
        print(f"  {tag:<17} {s.sum:>12.0f} s ({share:5.1f}%) {bar}")
    # The paper's observation: the last activity dominates.
    docking_sum = by_tag["docking"].sum
    assert all(docking_sum >= by_tag[t].sum for t in order[:-1])
    # And the distribution is genuinely heterogeneous.
    assert by_tag["babel"].sum < 0.1 * docking_sum
