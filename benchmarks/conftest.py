"""Shared benchmark fixtures.

Expensive experiment runs (the core sweeps, the real Table-3 docking
campaign) execute once per session and are shared across benchmark
modules; the ``benchmark`` fixture then times cheap, representative
slices so ``pytest benchmarks/ --benchmark-only`` both *regenerates the
paper's numbers* (printed to stdout) and produces timing statistics.

Environment knobs:

* ``REPRO_BENCH_PAIRS``    — simulated pairs per sweep point (default 1000;
  the paper's full scale is 9996).
* ``REPRO_TABLE3_RECEPTORS`` — receptors docked for real in the Table-3
  campaign (default 8; the paper uses all 238).
"""

import os
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

BENCH_PAIRS = int(os.environ.get("REPRO_BENCH_PAIRS", "1000"))
TABLE3_RECEPTORS = int(os.environ.get("REPRO_TABLE3_RECEPTORS", "8"))

#: Scale factor from the benchmark subset to the paper's 1,000-pair
#: Table 3 (238 receptors x 4 ligands).
def table3_scale() -> float:
    return 238.0 / TABLE3_RECEPTORS


@pytest.fixture(scope="session")
def core_sweeps():
    """Figs 7-9: the simulated 2..128-core sweep for both engines."""
    from repro.perf.experiments import run_core_sweep

    return {
        scenario: run_core_sweep(
            scenario=scenario, n_pairs=BENCH_PAIRS, failure_rate=0.10
        )
        for scenario in ("ad4", "vina")
    }


@pytest.fixture(scope="session")
def table3_campaign():
    """Table 3 / Figs 10-12: real docking runs for both fixed scenarios."""
    from repro.core.datasets import CL0125_RECEPTORS, TABLE3_LIGANDS, pair_relation
    from repro.core.scidock import SciDockConfig, run_scidock

    receptors = list(CL0125_RECEPTORS[:TABLE3_RECEPTORS])
    results = {}
    for scenario in ("ad4", "vina"):
        pairs = pair_relation(receptors=receptors, ligands=list(TABLE3_LIGANDS))
        report, store = run_scidock(
            pairs,
            SciDockConfig(scenario=scenario, workers=os.cpu_count() or 4, seed=0),
        )
        results[scenario] = (report, store)
    return results


@pytest.fixture(scope="session")
def sixteen_core_run():
    """Figs 5-6: one simulated 16-core execution with provenance."""
    from repro.perf.experiments import run_single_scale

    return run_single_scale(
        16, scenario="ad4", n_pairs=BENCH_PAIRS, failure_rate=0.10
    )
