"""Figure 12 — 3D structure of the best receptor-ligand complex.

The paper renders 2HHN-0E6 (best interaction) with the docked ligand in
the binding box. We regenerate the complex for the campaign's best
converged interaction: re-dock that pair, merge receptor + docked ligand
into one PDB, and report the contact summary.
"""

import numpy as np

from repro.chem.formats.pdb import parse_pdb, write_pdb
from repro.chem.generate import generate_ligand, generate_receptor
from repro.core.analysis import collect_outcomes, top_interactions
from repro.docking.box import GridBox
from repro.docking.prepare import prepare_ligand, prepare_receptor
from repro.docking.scoring_vina import build_vina_maps
from repro.docking.vina import Vina
from repro.core.scidock import FAST_VINA


def test_fig12_best_complex(benchmark, table3_campaign, tmp_path):
    report, store = table3_campaign["vina"]
    outcomes = collect_outcomes(store, report.wkfid)
    top = top_interactions(outcomes, n=3)
    assert top, "the Vina campaign must produce converged interactions"
    print("\nFIGURE 12: top interactions (paper: 2HHN-0E6, 1S4V-0D6, 1HUC-0D6)")
    for o in top:
        print(f"  {o.receptor}-{o.ligand}: FEB {o.feb:+.2f} kcal/mol")
    best = top[0]

    def build_complex():
        receptor = generate_receptor(best.receptor)
        ligand = generate_ligand(best.ligand)
        rp = prepare_receptor(receptor)
        lp = prepare_ligand(ligand)
        box = GridBox.around_pocket(
            np.array(receptor.metadata["pocket_center"]),
            receptor.metadata["pocket_radius"],
            spacing=0.6,
        )
        maps = build_vina_maps(rp.molecule, box)
        engine = Vina(rp, box, FAST_VINA, maps=maps)
        # Small budgets occasionally miss the pocket from one seed; take
        # the best of three independent re-docks (cheaper than raising
        # exhaustiveness across the whole campaign).
        results = [engine.dock(lp, seed=s) for s in (0, 1, 2)]
        result = min(results, key=lambda r: r.best_energy)
        pose = result.best_pose
        # Merge the receptor and the docked ligand into one structure.
        complex_mol = rp.molecule.copy()
        docked = lp.molecule.copy()
        docked.set_coords(pose.coords)
        for atom in docked.atoms:
            atom.metadata["hetatm"] = True
            atom.residue_name = best.ligand[:3]
            atom.chain_id = "L"
        for atom in docked.atoms:
            complex_mol.add_atom(atom)
        complex_mol.name = f"{best.receptor}-{best.ligand}"
        return complex_mol, pose, box

    complex_mol, pose, box = benchmark(build_complex)
    pdb_text = write_pdb(
        complex_mol,
        remarks=[
            f"SciDock complex {complex_mol.name}",
            f"FEB {pose.energy:+.2f} kcal/mol",
            f"grid box center {box.center.round(2).tolist()} dims {box.dimensions.round(1).tolist()}",
        ],
    )
    out = tmp_path / f"{complex_mol.name}.pdb"
    out.write_text(pdb_text)
    # Render the figure itself (SVG, like the paper's screenshot).
    from repro.viz import render_complex_svg

    receptor_only = generate_receptor(best.receptor)
    # Re-prepare the ligand (deterministic) so the atom count matches the
    # docked pose, then place it at the pose coordinates.
    ligand_only = prepare_ligand(generate_ligand(best.ligand)).molecule
    ligand_only.set_coords(pose.coords)
    svg = render_complex_svg(
        receptor_only,
        ligand_only,
        box,
        title=f"{complex_mol.name}  FEB {pose.energy:+.2f} kcal/mol",
    )
    (tmp_path / f"{complex_mol.name}.svg").write_text(svg)
    assert svg.startswith("<svg")
    # Round-trip sanity: the merged complex is valid PDB.
    back = parse_pdb(pdb_text)
    assert len(back) == len(complex_mol)

    # Contact analysis: docked ligand sits in the pocket, near receptor
    # atoms but not clashing through them.
    rec_coords = np.array(
        [a.coords for a in complex_mol.atoms if a.chain_id != "L"]
    )
    lig_coords = np.array(
        [a.coords for a in complex_mol.atoms if a.chain_id == "L"]
    )
    diff = lig_coords[:, None, :] - rec_coords[None, :, :]
    dists = np.sqrt((diff**2).sum(axis=-1))
    n_contacts = int((dists < 4.5).any(axis=1).sum())
    print(
        f"complex {complex_mol.name}: FEB {pose.energy:+.2f} kcal/mol, "
        f"{n_contacts}/{len(lig_coords)} ligand atoms within 4.5 A of the "
        f"receptor, min contact {dists.min():.2f} A"
    )
    assert pose.energy < 0
    assert n_contacts >= len(lig_coords) // 4
    assert dists.min() > 1.0  # no atom fusion
