"""Ablation — activation-level re-execution vs whole-workflow restart.

The paper: each SciDock run sees ~10 % activation failures; SciCumulus
re-executes *only the failed activations* because the provenance store
knows exactly which they are. The alternative (restart everything on any
failure) is simulated as the expected cost of whole-run retries.

Also covers the Hg looping pathology: watchdog aborts (late, expensive)
vs the pre-dispatch blocking routine the authors added.
"""

from repro.perf.experiments import run_single_scale

from conftest import BENCH_PAIRS

N_PAIRS = max(150, BENCH_PAIRS // 5)


def test_ablation_reexecution(benchmark):
    def run():
        return run_single_scale(
            16, scenario="adaptive", n_pairs=N_PAIRS, failure_rate=0.10
        )

    with_failures = benchmark.pedantic(run, rounds=1, iterations=1)
    clean = run_single_scale(
        16, scenario="adaptive", n_pairs=N_PAIRS, failure_rate=0.0
    )
    retry_overhead = with_failures.tet_seconds / clean.tet_seconds - 1.0
    print(
        f"\nABLATION fault tolerance ({N_PAIRS} pairs @16 cores): clean TET "
        f"{clean.tet_seconds / 3600:.2f} h; with 10% failures + activation "
        f"re-execution {with_failures.tet_seconds / 3600:.2f} h "
        f"({retry_overhead * 100:+.1f}%); {with_failures.report.retried} "
        "activations re-executed"
    )
    assert with_failures.report.retried > 0
    # Activation-level recovery costs a modest overhead ...
    assert retry_overhead < 0.6

    # ... while whole-workflow restart under a 10% per-activation failure
    # rate would essentially never finish: P(all N activations succeed)
    # is astronomically small, so expected restarts explode.
    n_activations = clean.report.total_activations
    p_clean_run = 0.90**n_activations
    print(
        f"whole-workflow restart baseline: P(one clean run) = 0.9^{n_activations} "
        f"≈ {p_clean_run:.2e} -> expected restarts ≈ {1 / max(p_clean_run, 1e-300):.2e}"
    )
    assert p_clean_run < 1e-10


def test_ablation_hg_routine(benchmark):
    """Blocking known-looping inputs beats paying the watchdog timeout."""

    def run_blocked():
        return run_single_scale(
            16, scenario="adaptive", n_pairs=238, failure_rate=0.0,
            block_known_loopers=True,
        )

    blocked = benchmark.pedantic(run_blocked, rounds=1, iterations=1)
    watchdog = run_single_scale(
        16, scenario="adaptive", n_pairs=238, failure_rate=0.0,
        block_known_loopers=False,
    )
    print(
        f"\nABLATION Hg routine (238 pairs): blocking known loopers TET "
        f"{blocked.tet_seconds / 3600:.2f} h ({blocked.report.blocked} blocked) "
        f"vs watchdog-only {watchdog.tet_seconds / 3600:.2f} h "
        f"({watchdog.report.aborted} aborted after full timeout)"
    )
    assert blocked.report.blocked > 0
    assert watchdog.report.aborted > 0
    # The routine saves the watchdog deadlines entirely.
    assert blocked.tet_seconds <= watchdog.tet_seconds
