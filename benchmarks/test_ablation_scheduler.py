"""Ablation — greedy cost-model scheduler vs naive round-robin.

SciCumulus' scheduling cost model sends long activations to fast cores.
This ablation quantifies the benefit on the heterogeneous SciDock load
(and shows the flip side: greedy planning overhead at large scale).
"""

from repro.perf.experiments import run_single_scale
from repro.workflow.scheduler import GreedyCostScheduler, RoundRobinScheduler

from conftest import BENCH_PAIRS

N_PAIRS = max(200, BENCH_PAIRS // 4)


def test_ablation_scheduler(benchmark):
    def run(scheduler):
        return run_single_scale(
            16,
            scenario="adaptive",
            n_pairs=N_PAIRS,
            scheduler=scheduler,
            failure_rate=0.05,
        )

    greedy = benchmark.pedantic(
        run, args=(GreedyCostScheduler(),), rounds=1, iterations=1
    )
    rr = run(RoundRobinScheduler())
    print(
        f"\nABLATION scheduler @16 cores, {N_PAIRS} pairs: "
        f"greedy TET {greedy.tet_seconds / 3600:.2f} h vs "
        f"round-robin {rr.tet_seconds / 3600:.2f} h "
        f"({(rr.tet_seconds / greedy.tet_seconds - 1) * 100:+.1f}% vs greedy)"
    )
    # Greedy is at worst marginally slower, typically faster, on the
    # heterogeneous docking mix.
    assert greedy.tet_seconds <= rr.tet_seconds * 1.10

    # At 128 cores greedy pays its planning overhead: measure it.
    greedy_big = run_single_scale(
        128, scenario="adaptive", n_pairs=N_PAIRS,
        scheduler=GreedyCostScheduler(), failure_rate=0.05,
    )
    rr_big = run_single_scale(
        128, scenario="adaptive", n_pairs=N_PAIRS,
        scheduler=RoundRobinScheduler(), failure_rate=0.05,
    )
    print(
        f"@128 cores: greedy {greedy_big.tet_seconds / 3600:.2f} h vs "
        f"round-robin {rr_big.tet_seconds / 3600:.2f} h "
        "(greedy overhead grows with queue x VMs — the paper's Fig. 9 cause)"
    )
    # The overhead mechanism exists: greedy's relative advantage shrinks
    # (or reverses) at 128 cores compared to 16.
    ratio_16 = greedy.tet_seconds / rr.tet_seconds
    ratio_128 = greedy_big.tet_seconds / rr_big.tet_seconds
    assert ratio_128 >= ratio_16 * 0.95
