"""Figure 11 — result of Query 2: produced '.dlg' files.

"Retrieve the names, sizes and locations of files with the extension
'.dlg' ... recovering also which workflow and activities produced those
files." Run over the real AD4 campaign so actual DLG files exist.
"""

from repro.provenance.queries import query2_files


def test_fig11_query2(benchmark, table3_campaign):
    report, store = table3_campaign["ad4"]
    files = benchmark(query2_files, store, report.wkfid, ".dlg")
    print("\nFIGURE 11: Query 2 result (first 10 rows)")
    print(f"{'workflow':<9} {'activity':<10} {'fname':<22} {'fsize':>8} fdir")
    for f in files[:10]:
        print(
            f"{f.workflow_tag:<9} {f.activity_tag:<10} {f.fname:<22} "
            f"{f.fsize:>8} {f.fdir}"
        )
    print(f"... {len(files)} .dlg files total")
    assert files, "the AD4 campaign must produce DLG files"
    for f in files:
        assert f.workflow_tag == "SciDock"
        assert f.activity_tag == "docking"
        assert f.fname.endswith(".dlg")
        assert f.fsize > 0
        assert "/autodock4/" in f.fdir
