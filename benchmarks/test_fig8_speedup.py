"""Figure 8 — speedup of SciDock.

Paper: ~13x at 16 cores vs single-core, near-linear from 2 to 32 cores,
small degradation beyond (heterogeneous VMs + load-balancing overhead).
"""

from repro.perf.metrics import speedup


def test_fig8_speedup(benchmark, core_sweeps):
    ad4, vina = core_sweeps["ad4"], core_sweeps["vina"]
    base_ad4 = ad4.baseline()
    base_vina = vina.baseline()

    def compute():
        return {
            "ad4": ad4.speedups(),
            "vina": vina.speedups(),
        }

    series = benchmark(compute)
    print("\nFIGURE 8: speedup (vs single-core extrapolated from 2-core run)")
    print(f"{'cores':>6} | {'AD4':>8} | {'Vina':>8} | {'ideal':>6}")
    for c, s_a, s_v in zip(ad4.core_counts, series["ad4"], series["vina"]):
        print(f"{c:>6} | {s_a:>8.2f} | {s_v:>8.2f} | {c:>6}")

    sp_ad4 = dict(zip(ad4.core_counts, series["ad4"]))
    # ~13x at 16 cores in the paper; accept the 10-17 band.
    print(f"speedup at 16 cores: {sp_ad4[16]:.1f}x (paper ~13x)")
    assert 10.0 < sp_ad4[16] < 18.0
    # Near-linear through 32 cores.
    assert sp_ad4[32] > 0.75 * 32
    # Degradation beyond 32: sub-linear growth 32 -> 128.
    assert sp_ad4[128] < 4 * sp_ad4[32]
    assert sp_ad4[128] / 128 < sp_ad4[32] / 32
    # Speedup still always grows with more cores ("there is always a gain").
    assert all(b > a for a, b in zip(series["ad4"], series["ad4"][1:]))
