"""Figure 7 — total execution time of SciDock vs virtual cores.

Paper headline: AD4 drops from 12.5 days (2 cores) to 11.9 hours
(128 cores); Vina from ~9 days to 7.7 hours, with 95.4 % / 96.1 %
improvement at 32 cores. The simulated sweep reproduces the shape; the
TETs below are for REPRO_BENCH_PAIRS pairs (default 1000, i.e. ~1/10 of
the paper's scale — multiply by 10 to compare absolute magnitudes).
"""

from repro.perf.experiments import run_single_scale


def _print_sweep(sweeps):
    print("\nFIGURE 7: total execution time (TET)")
    print(f"{'cores':>6} | {'AD4 TET (h)':>12} | {'Vina TET (h)':>13}")
    ad4, vina = sweeps["ad4"], sweeps["vina"]
    for (c, t_ad4), t_vina in zip(
        zip(ad4.core_counts, ad4.tets), vina.tets
    ):
        print(f"{c:>6} | {t_ad4 / 3600:>12.2f} | {t_vina / 3600:>13.2f}")


def test_fig7_tet_curves(benchmark, core_sweeps):
    _print_sweep(core_sweeps)
    ad4, vina = core_sweeps["ad4"], core_sweeps["vina"]

    # TET decreases monotonically with cores for both engines.
    for sweep in (ad4, vina):
        assert all(b < a for a, b in zip(sweep.tets, sweep.tets[1:]))
    # Vina is faster than AD4 at every scale (paper: 9 vs 12.5 days etc.).
    assert all(v < a for v, a in zip(vina.tets, ad4.tets))
    # Improvement at 32 cores is in the paper's ballpark (95.4 / 96.1 %).
    imp_ad4 = dict(zip(ad4.core_counts, ad4.improvements()))[32]
    imp_vina = dict(zip(vina.core_counts, vina.improvements()))[32]
    print(
        f"improvement at 32 cores: AD4 {imp_ad4:.1f}% (paper 95.4%), "
        f"Vina {imp_vina:.1f}% (paper 96.1%)"
    )
    assert 88.0 < imp_ad4 < 98.0
    assert 88.0 < imp_vina < 98.0
    # Overall reduction factor 2 -> 128 cores is order tens (paper ~25x).
    factor = ad4.tets[0] / ad4.tets[-1]
    print(f"AD4 TET reduction 2->128 cores: {factor:.1f}x (paper ~25x)")
    assert factor > 10
    # Data volume: the paper reports ~600 GB per full workflow execution.
    point = ad4.points[0]
    gb = point.report.bytes_written / 1e9
    scaled = gb * 9996 / max(1, len(point.report.output))
    print(
        f"shared-FS data volume: {gb:.1f} GB at this scale, ~{scaled:.0f} GB "
        "scaled to 9,996 pairs (paper: ~600 GB per execution)"
    )
    assert 300 < scaled < 1200

    # Benchmark one representative simulation point (16 cores).
    benchmark.pedantic(
        run_single_scale,
        args=(16,),
        kwargs=dict(scenario="ad4", n_pairs=200, failure_rate=0.1),
        rounds=1,
        iterations=1,
    )
