"""Table 2 — receptors and ligands of clan Peptidase_CA (CL0125).

Regenerates the dataset summary and benchmarks synthetic structure
generation (the offline stand-in for RCSB-PDB downloads).
"""

from repro.chem.generate import generate_ligand, generate_receptor
from repro.core.datasets import CL0125_RECEPTORS, CP_LIGANDS, pair_relation


def test_table2_counts(benchmark):
    rel = benchmark(pair_relation)
    print(
        f"\nTABLE 2: {len(CL0125_RECEPTORS)} receptors (PDB) x "
        f"{len(CP_LIGANDS)} ligands (SDF) = {len(rel)} receptor-ligand pairs"
        " (paper: 'all-out 10,000')"
    )
    assert len(CL0125_RECEPTORS) == 238
    assert len(CP_LIGANDS) == 42
    assert len(rel) == 9996


def test_receptor_generation(benchmark):
    rec = benchmark(generate_receptor, "2HHN")
    print(
        f"\nreceptor 2HHN: {len(rec)} atoms, size class "
        f"{rec.metadata['size_class']}, pocket radius "
        f"{rec.metadata['pocket_radius']:.1f} A"
    )
    assert len(rec) > 100


def test_ligand_generation(benchmark):
    lig = benchmark(generate_ligand, "0E6")
    print(f"\nligand 0E6: {len(lig)} atoms, formula {lig.formula}")
    assert len(lig) >= 8
