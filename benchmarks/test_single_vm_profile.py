"""Single-VM program profiling (the paper's §V.C first step).

"For each activity of SciDock ... we first measure the performance of
all programs on a single VM to analyze the local optimization before
adding more VMs." These micro-benchmarks time each program of the
toolchain in isolation — the numbers that calibrate the simulation's
cost model (`repro.perf.calibrate`).
"""

import numpy as np
import pytest

from repro.chem.babel import convert_molecule
from repro.chem.generate import generate_ligand, generate_receptor
from repro.core.scidock import FAST_AD4, FAST_VINA
from repro.docking.autodock import AutoDock4
from repro.docking.autogrid import AutoGrid
from repro.docking.box import GridBox
from repro.docking.prepare import (
    prepare_gpf,
    prepare_ligand,
    prepare_receptor,
)
from repro.docking.scoring_ad4 import AD4Scorer
from repro.docking.scoring_vina import VinaScorer, build_vina_maps
from repro.docking.vina import Vina


@pytest.fixture(scope="module")
def setup():
    rec = generate_receptor("2HHN")
    lig = generate_ligand("0E6")
    rp = prepare_receptor(rec)
    lp = prepare_ligand(lig)
    box = GridBox.around_pocket(
        np.array(rec.metadata["pocket_center"]),
        rec.metadata["pocket_radius"],
        spacing=0.8,
    )
    maps = AutoGrid().run(rp.molecule, box, lp.atom_types)
    vmaps = build_vina_maps(rp.molecule, box)
    return rec, lig, rp, lp, box, maps, vmaps


def test_profile_babel(benchmark, setup):
    _, lig, *_ = setup
    out = benchmark(convert_molecule, lig, "mol2")
    assert "@<TRIPOS>MOLECULE" in out


def test_profile_prepare_ligand(benchmark, setup):
    _, lig, *_ = setup
    prep = benchmark(prepare_ligand, lig)
    assert prep.torsdof >= 0


def test_profile_prepare_receptor(benchmark, setup):
    rec, *_ = setup
    prep = benchmark(prepare_receptor, rec)
    assert len(prep.molecule) > 100


def test_profile_prepare_gpf(benchmark, setup):
    _, _, rp, lp, box, *_ = setup
    text = benchmark(prepare_gpf, rp, lp, box)
    assert "gridcenter" in text


def test_profile_autogrid(benchmark, setup):
    _, _, rp, lp, box, *_ = setup
    maps = benchmark.pedantic(
        AutoGrid().run, args=(rp.molecule, box, lp.atom_types),
        rounds=2, iterations=1,
    )
    assert maps.atom_types


def test_profile_ad4_energy_evaluation(benchmark, setup):
    """The GA's inner loop: one grid-based energy evaluation."""
    _, _, _, lp, _, maps, _ = setup
    scorer = AD4Scorer(maps, lp.molecule)
    coords = lp.molecule.coords - lp.molecule.coords.mean(axis=0) + maps.box.center
    e = benchmark(scorer.docking_energy, coords)
    assert np.isfinite(e)


def test_profile_vina_energy_evaluation(benchmark, setup):
    """Vina's inner loop, with and without the grid cache."""
    _, _, rp, lp, box, _, vmaps = setup
    gridded = VinaScorer(rp.molecule, lp.molecule, box, maps=vmaps)
    coords = lp.molecule.coords - lp.molecule.coords.mean(axis=0) + box.center
    e = benchmark(gridded.search_energy, coords)
    assert np.isfinite(e)


def test_profile_vina_exact_evaluation(benchmark, setup):
    _, _, rp, lp, box, _, _ = setup
    exact = VinaScorer(rp.molecule, lp.molecule, box)
    coords = lp.molecule.coords - lp.molecule.coords.mean(axis=0) + box.center
    e = benchmark(exact.search_energy, coords)
    assert np.isfinite(e)


def test_profile_ad4_docking(benchmark, setup):
    _, _, _, lp, _, maps, _ = setup
    result = benchmark.pedantic(
        AutoDock4(maps, FAST_AD4).dock, args=(lp,), kwargs={"seed": 1},
        rounds=2, iterations=1,
    )
    assert result.poses


def test_profile_vina_docking(benchmark, setup):
    _, _, rp, lp, box, _, vmaps = setup
    engine = Vina(rp, box, FAST_VINA, maps=vmaps)
    result = benchmark.pedantic(
        engine.dock, args=(lp,), kwargs={"seed": 1}, rounds=2, iterations=1
    )
    assert result.poses
