"""Ablation — adaptive elasticity on/off.

SciCumulus scales the VM pool with the load. Starting from a small
cluster, the adaptive policy should approach the TET of a statically
over-provisioned cluster while provisioning VMs only when the backlog
demands them.
"""

from repro.perf.experiments import run_single_scale
from repro.workflow.adaptive import AdaptiveElasticityPolicy

from conftest import BENCH_PAIRS

N_PAIRS = max(150, BENCH_PAIRS // 5)


def test_ablation_elasticity(benchmark):
    # Static small cluster: 4 cores only.
    static_small = run_single_scale(
        4, scenario="adaptive", n_pairs=N_PAIRS, failure_rate=0.05
    )
    # Static big cluster: 32 cores from the start.
    static_big = run_single_scale(
        32, scenario="adaptive", n_pairs=N_PAIRS, failure_rate=0.05
    )

    # Elastic: start at 4, let the policy scale to at most 32.
    def elastic():
        return run_single_scale(
            32,
            scenario="adaptive",
            n_pairs=N_PAIRS,
            failure_rate=0.05,
            elasticity=AdaptiveElasticityPolicy(
                min_cores=4, max_cores=32, drain_horizon=600.0
            ),
        )

    elastic_res = benchmark.pedantic(elastic, rounds=1, iterations=1)
    print(
        f"\nABLATION elasticity ({N_PAIRS} pairs): static-4 "
        f"{static_small.tet_seconds / 3600:.2f} h, static-32 "
        f"{static_big.tet_seconds / 3600:.2f} h, elastic(4->32) "
        f"{elastic_res.tet_seconds / 3600:.2f} h, peak cores "
        f"{elastic_res.report.peak_cores}"
    )
    # Elastic beats the small static cluster decisively ...
    assert elastic_res.tet_seconds < static_small.tet_seconds * 0.7
    # ... and lands within 2x of the fully provisioned one (boot latency
    # and ramp-up are real costs).
    assert elastic_res.tet_seconds < static_big.tet_seconds * 2.0
    # The policy actually scaled.
    assert elastic_res.report.peak_cores > 4
