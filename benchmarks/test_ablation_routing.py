"""Ablation — adaptive AD4/Vina routing vs a fixed engine.

SciDock's design contribution: route small receptors to AD4 and large,
flexible ones to Vina. Compared against forcing one engine for every
pair (the paper's Scenario I / II), adaptive routing should land between
the all-Vina (fast) and all-AD4 (slow) runtimes while keeping AD4's
deeper scoring where it is affordable.
"""

from repro.perf.experiments import run_single_scale

from conftest import BENCH_PAIRS

N_PAIRS = max(200, BENCH_PAIRS // 4)


def test_ablation_engine_routing(benchmark):
    def run(scenario):
        return run_single_scale(
            16, scenario=scenario, n_pairs=N_PAIRS, failure_rate=0.05
        )

    adaptive = benchmark.pedantic(run, args=("adaptive",), rounds=1, iterations=1)
    all_ad4 = run("ad4")
    all_vina = run("vina")
    print(
        f"\nABLATION engine routing ({N_PAIRS} pairs @16 cores): "
        f"all-AD4 {all_ad4.tet_seconds / 3600:.2f} h, adaptive "
        f"{adaptive.tet_seconds / 3600:.2f} h, all-Vina "
        f"{all_vina.tet_seconds / 3600:.2f} h"
    )
    # Vina-only is the fastest, AD4-only the slowest, adaptive in between.
    assert all_vina.tet_seconds < all_ad4.tet_seconds
    assert all_vina.tet_seconds <= adaptive.tet_seconds <= all_ad4.tet_seconds * 1.02
