"""Table 3 — results of the molecular docking processes for SciDock.

Paper (1,000 pairs = 238 receptors x ligands 042/074/0D6/0E6):

* FEB(-) counts: 287 (AD4) vs 355 (Vina) — Vina finds more favorable
  interactions; both are a minority of all pairs.
* avg FEB(-): -4.9..-8.4 kcal/mol (AD4) vs -4.5..-5.7 (Vina) — AD4's
  favorable energies run deeper.
* avg RMSD: ~53-57 A (AD4, reference-frame RMSD) vs ~9-10 A (Vina,
  mode-table RMSD).

The campaign here runs REPRO_TABLE3_RECEPTORS receptors (default 8) for
real with both engines; counts are scaled to the paper's 952-pair basis
for comparison.
"""

import numpy as np

from repro.core.analysis import (
    collect_outcomes,
    compute_table3,
    format_table3,
    total_favorable,
)
from repro.core.datasets import TABLE3_LIGANDS

from conftest import TABLE3_RECEPTORS, table3_scale


def test_table3(benchmark, table3_campaign):
    def analyze():
        rows = []
        outcomes = {}
        for scenario, (report, store) in table3_campaign.items():
            outs = collect_outcomes(store, report.wkfid)
            outcomes[scenario] = outs
            rows.extend(compute_table3(outs, ligands=TABLE3_LIGANDS))
        return rows, outcomes

    rows, outcomes = benchmark(analyze)
    scale = table3_scale()
    n_pairs = TABLE3_RECEPTORS * len(TABLE3_LIGANDS)
    print(
        f"\nTABLE 3 ({TABLE3_RECEPTORS} receptors x {len(TABLE3_LIGANDS)} "
        f"ligands = {n_pairs} pairs per engine; scaled x{scale:.1f} to the "
        "paper's 952-pair basis)"
    )
    print(format_table3(rows))
    fav_ad4 = total_favorable(rows, "autodock4")
    fav_vina = total_favorable(rows, "vina")
    print(
        f"total FEB(-): AD4 {fav_ad4} (scaled ~{fav_ad4 * scale:.0f}; paper 287), "
        f"Vina {fav_vina} (scaled ~{fav_vina * scale:.0f}; paper 355)"
    )

    # Shape assertion 1: Vina finds at least as many favorable pairs.
    assert fav_vina >= fav_ad4
    assert fav_vina > 0

    # Shape assertion 2: FEB bands. Favorable energies are single-digit
    # negative kcal/mol for both engines.
    for r in rows:
        if r.avg_feb_negative is not None:
            assert -15.0 < r.avg_feb_negative < 0.0

    # Shape assertion 3: the RMSD split. AD4 reports reference-frame RMSD
    # (tens of Angstrom, crystal-frame offset); Vina reports mode-spread
    # RMSD (single digits).
    ad4_rmsd = [r.avg_rmsd for r in rows if r.engine == "autodock4" and r.avg_rmsd]
    vina_rmsd = [r.avg_rmsd for r in rows if r.engine == "vina" and r.avg_rmsd is not None]
    print(
        f"avg RMSD: AD4 {np.mean(ad4_rmsd):.1f} A (paper 53-57), "
        f"Vina {np.mean(vina_rmsd):.1f} A (paper 9-10)"
    )
    assert np.mean(ad4_rmsd) > 25.0
    assert np.mean(vina_rmsd) < 15.0
    assert np.mean(ad4_rmsd) > 3 * np.mean(vina_rmsd)

    # Shape assertion 4 (Chang et al. 2010, cited twice by the paper):
    # "a clear association between molecular docking predictions of
    # AutoDock and Vina" — the engines' FEBs correlate positively.
    from repro.core.analysis import engine_agreement

    agg = engine_agreement(outcomes["ad4"], outcomes["vina"])
    print(
        f"engine agreement over {agg.n_pairs} pairs: Pearson r = "
        f"{agg.pearson_r:.2f}, Spearman rho = {agg.spearman_rho:.2f} "
        "(paper cites Chang et al.: 'a clear association')"
    )
    assert agg.pearson_r > 0.1
