"""Figure 9 — efficiency of SciDock.

Paper: efficiency decreases as VMs grow from 32 to 128 cores, caused by
the greedy scheduler's plan-computation overhead growing with
(activations x VMs).
"""


def test_fig9_efficiency(benchmark, core_sweeps):
    ad4, vina = core_sweeps["ad4"], core_sweeps["vina"]

    def compute():
        return {"ad4": ad4.efficiencies(), "vina": vina.efficiencies()}

    series = benchmark(compute)
    print("\nFIGURE 9: parallel efficiency")
    print(f"{'cores':>6} | {'AD4':>6} | {'Vina':>6}")
    for c, e_a, e_v in zip(ad4.core_counts, series["ad4"], series["vina"]):
        print(f"{c:>6} | {e_a:>6.2f} | {e_v:>6.2f}")

    eff_ad4 = dict(zip(ad4.core_counts, series["ad4"]))
    eff_vina = dict(zip(vina.core_counts, series["vina"]))
    # High efficiency through 32 cores ...
    assert eff_ad4[32] > 0.75
    # ... declining from 32 to 128 (the paper's Fig. 9 shape).
    assert eff_ad4[64] < eff_ad4[32]
    assert eff_ad4[128] < eff_ad4[64]
    assert eff_vina[128] < eff_vina[32]
    print(
        f"efficiency decay 32->128 cores: AD4 {eff_ad4[32]:.2f} -> "
        f"{eff_ad4[128]:.2f}, Vina {eff_vina[32]:.2f} -> {eff_vina[128]:.2f}"
    )
