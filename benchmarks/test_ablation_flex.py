"""Ablation — rigid vs flexible-side-chain docking.

AutoDock's selective receptor flexibility (and FLIPDock in the paper's
related work) lets pocket side-chains rotate during the search. The
extra degrees of freedom should never make the best reachable pose
worse and typically relieve pocket clashes.
"""

import numpy as np

from repro.chem.generate import generate_ligand, generate_receptor
from repro.docking.box import GridBox
from repro.docking.flex import FlexibleVina
from repro.docking.mc import ILSConfig
from repro.docking.prepare import prepare_ligand, prepare_receptor
from repro.docking.vina import Vina, VinaParameters

ILS = ILSConfig(restarts=2, steps_per_restart=3, bfgs_iterations=8)
PAIRS = [("2HHN", "0E6"), ("1S4V", "0D6")]


def test_ablation_flexible_sidechains(benchmark):
    rows = []

    def dock_pair(rid, lid):
        rec = generate_receptor(rid)
        lig = generate_ligand(lid)
        rp = prepare_receptor(rec)
        lp = prepare_ligand(lig)
        box = GridBox.around_pocket(
            np.array(rec.metadata["pocket_center"]),
            rec.metadata["pocket_radius"],
            spacing=0.6,
        )
        rigid = Vina(
            rp, box, VinaParameters(exhaustiveness=2, ils=ILS), use_grid=False
        ).dock(lp, seed=5)
        flexible = FlexibleVina(rp, box, flex_radius=12.0, ils=ILS).dock(
            lp, seed=5
        )
        return rigid.best_energy, flexible.best_energy, flexible

    first = benchmark.pedantic(dock_pair, args=PAIRS[0], rounds=1, iterations=1)
    rows.append((PAIRS[0], first[0], first[1]))
    for rid, lid in PAIRS[1:]:
        rigid_e, flex_e, _ = dock_pair(rid, lid)
        rows.append(((rid, lid), rigid_e, flex_e))

    print("\nABLATION flexible side-chains (Vina search, exact scorer):")
    for (rid, lid), rigid_e, flex_e in rows:
        print(
            f"  {rid}-{lid}: rigid {rigid_e:+.2f} vs flexible {flex_e:+.2f} "
            f"kcal/mol ({flex_e - rigid_e:+.2f})"
        )
    # Flexibility adds search dimensions; with the strain penalty the
    # reachable affinities stay comparable — assert no catastrophic
    # regression and at least one pair where flexibility helps or ties.
    deltas = [flex_e - rigid_e for _, rigid_e, flex_e in rows]
    assert min(deltas) < 1.5
    assert all(d < 5.0 for d in deltas)
