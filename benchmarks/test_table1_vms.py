"""Table 1 — characteristics of the VMs used (instance catalog).

Regenerates the paper's Table 1 rows and benchmarks virtual-cluster
provisioning at the experiment's maximum scale (32 VMs / 128 cores).
"""

from repro.cloud.cluster import VirtualCluster
from repro.cloud.instance import table1_rows
from repro.cloud.provider import CloudProvider
from repro.cloud.simclock import SimClock


def test_table1_rows(benchmark):
    rows = benchmark(table1_rows)
    print("\nTABLE 1. CHARACTERISTICS OF USED VMS")
    print(f"{'Instance Type':<14} {'# cores':>8}  Physical Processor")
    for r in rows:
        print(
            f"{r['instance_type']:<14} {r['cores']:>8}  {r['physical_processor']}"
        )
    assert rows[0]["instance_type"] == "m3.xlarge" and rows[0]["cores"] == 4
    assert rows[1]["instance_type"] == "m3.2xlarge" and rows[1]["cores"] == 8


def test_provision_128_cores(benchmark):
    def provision():
        clock = SimClock()
        cluster = VirtualCluster(CloudProvider(clock))
        cluster.scale_to(128)
        clock.run()
        return cluster

    cluster = benchmark(provision)
    print(
        f"\nprovisioned {len(cluster.active_vms)} VMs / "
        f"{cluster.total_cores} cores (paper: up to 32 VMs / 128 virtual cores)"
    )
    assert cluster.total_cores >= 128
    assert len(cluster.active_vms) <= 32
